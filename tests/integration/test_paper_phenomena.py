"""Integration tests pinning the paper's qualitative findings.

These are the claims the reproduction must preserve regardless of the
synthetic topology's exact numbers: vulnerability ordering by depth, the
concavity flip, useless random deployment, the non-linear core-deployment
threshold, the counterintuitive weakness of tier-1 probes, and the massive
address-space capture of a successful deep-target hijack.
"""

import pytest

from repro.core.deployment_analysis import compare_strategies
from repro.core.detection_analysis import compare_detectors, paper_probe_sets
from repro.core.roles import resolve_roles
from repro.core.vulnerability import profile_target
from repro.defense.strategies import paper_ladder
from repro.registry.publication import PublicationState

SAMPLE = 150


@pytest.fixture(scope="module")
def roles(medium_graph):
    return resolve_roles(medium_graph)


@pytest.fixture(scope="module")
def authority(medium_lab):
    return PublicationState.full(medium_lab.plan).table()


@pytest.fixture(scope="module")
def ladder_comparison(medium_lab, roles, authority):
    return compare_strategies(
        medium_lab,
        roles.deep_target,
        paper_ladder(medium_lab.graph),
        authority,
        transit_only=True,
        sample=SAMPLE,
        seed=0,
    )


class TestSectionIV:
    def test_vulnerability_increases_with_depth(self, medium_lab, roles):
        means = [
            profile_target(medium_lab, asn, sample=SAMPLE, seed=0).summary.mean
            for asn in (
                roles.tier1_target,
                roles.depth1_multi_stub,
                roles.depth2_stub,
                roles.deep_target,
            )
        ]
        assert means[0] < means[-1]
        assert means[1] < means[2] < means[3]

    def test_concavity_flip_between_depth1_and_depth2(self, medium_lab, roles):
        # Paper: "the concavity of the curve actually flips between depth
        # 1 and 2" — operationally, the median attack against a depth-2
        # target pollutes a far larger share than against depth-1.
        def median_pollution(asn):
            outcomes = medium_lab.sweep_target(asn, sample=SAMPLE, seed=0)
            counts = sorted(o.pollution_count for o in outcomes.values())
            return counts[len(counts) // 2]

        assert median_pollution(roles.depth2_stub) > 1.5 * median_pollution(
            roles.depth1_multi_stub
        )

    def test_tier2_hierarchy_mirrors_tier1(self, medium_lab, roles):
        # Fig. 3's point: a stub under a tier-2 behaves like depth 1, not 2.
        under_tier2 = profile_target(
            medium_lab, roles.tier2_depth1_stub, sample=SAMPLE, seed=0
        ).summary.mean
        depth2 = profile_target(
            medium_lab, roles.depth2_stub, sample=SAMPLE, seed=0
        ).summary.mean
        assert under_tier2 < depth2

    def test_deep_hijack_captures_most_address_space(self, medium_lab, roles):
        attacker = roles.aggressive_attacker
        outcome = medium_lab.origin_hijack(roles.deep_target, attacker)
        assert outcome.address_fraction > 0.5  # paper's Fig. 1: 96%


class TestSectionV:
    def test_random_deployment_nearly_useless(self, ladder_comparison):
        factors = ladder_comparison.improvement_factors()
        random_factors = [
            value for name, value in factors.items() if name.startswith("random")
        ]
        assert random_factors
        assert max(random_factors) < 3.0

    def test_tier1_helps_but_not_enough(self, ladder_comparison):
        factors = ladder_comparison.improvement_factors()
        tier1 = next(v for k, v in factors.items() if k.startswith("tier1"))
        core_62 = factors["core-62"]
        assert 1.0 < tier1 < core_62

    def test_nonlinear_threshold_at_core(self, ladder_comparison):
        # The paper's headline: adding the high-degree core flips small
        # improvements into large gains.
        factors = ladder_comparison.improvement_factors()
        assert factors["core-62"] > 4.0
        crossover = ladder_comparison.crossover(factor=4.0)
        assert crossover is not None
        assert crossover.strategy.name.startswith("core")

    def test_larger_core_tiers_keep_improving(self, ladder_comparison):
        factors = ladder_comparison.improvement_factors()
        assert factors["core-299"] >= factors["core-62"]
        assert ladder_comparison.is_monotone_improving()

    def test_residual_attacks_remain(self, ladder_comparison):
        # "Although the situation has been drastically improved it is
        # still not perfect."
        final = ladder_comparison.evaluations[-1]
        assert final.profile.summary.maximum > 0


class TestSectionVI:
    @pytest.fixture(scope="class")
    def comparison(self, medium_lab):
        return compare_detectors(
            medium_lab, paper_probe_sets(medium_lab), attack_count=600, seed=3
        )

    def test_tier1_probes_are_worst(self, comparison):
        rates = comparison.miss_rates()
        tier1 = next(v for k, v in rates.items() if k.startswith("tier1"))
        assert tier1 == max(rates.values())
        assert tier1 > 0.1  # a substantial blind spot, like the paper's 34%

    def test_top_degree_probes_are_best(self, comparison):
        rates = comparison.miss_rates()
        top = next(v for k, v in rates.items() if k.startswith("top-degree"))
        assert top == min(rates.values())
        assert top < 0.15  # paper: 3%

    def test_large_attacks_escape_tier1_probes(self, comparison):
        tier1_study = next(
            s for s in comparison.studies
            if s.detector.probes.name.startswith("tier1")
        )
        summary = tier1_study.undetected_summary()
        # Paper: undetected attacks averaged thousands of polluted ASes,
        # max near 50% of the internet.
        assert summary["max_pollution"] > 0.2 * 900

    def test_more_probes_triggered_for_larger_attacks(self, comparison):
        for study in comparison.studies:
            means = study.mean_size_by_probe_count()
            positive = [bucket for bucket in means if bucket > 0]
            if len(positive) >= 3:
                assert means[max(positive)] > means[min(positive)]
