"""The library's central correctness property: the fast engine computes
exactly the stable state the message-passing simulator converges to.

Random Gao–Rexford-shaped topologies (hierarchical provider DAG + random
peering + occasional siblings) are generated with hypothesis; for random
(target, attacker) pairs both engines run the full two-phase hijack and
must agree on every node's installed origin, route class and path length.

A second layer extends the property to the parallel sweep executor: for
``workers in {1, 2, 4}``, with the convergence cache cold or hot, a
sweep's per-attack outcomes (pollution sets, blocked sets, address
fractions, result ordering) must be bit-identical to the sequential
reference.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.lab import HijackLab
from repro.bgp.engine import RoutingEngine
from repro.bgp.policy import PolicyConfig
from repro.bgp.simulator import BGPSimulator
from repro.oracle.strategies import example_budget, hierarchical_topologies
from repro.parallel import ConvergenceCache
from repro.prefixes.prefix import Prefix
from repro.topology.view import RoutingView

PREFIX = Prefix.parse("10.0.0.0/8")
SWEEP_WORKER_COUNTS = (1, 2, 4)

# The internet-shaped topology strategy lives in the shared library
# (repro.oracle.strategies); the oracle-differential suite draws from the
# same shape, so engine==simulator and engine==oracle cover one domain.
random_topologies = hierarchical_topologies


def assert_states_agree(view, simulator, engine_state, prefix):
    for node in range(len(view)):
        route = simulator.route_to(prefix, node)
        if route is None:
            assert not engine_state.has_route(node), (
                f"engine found a route at node {node}, simulator did not"
            )
            continue
        assert engine_state.has_route(node), f"missing route at node {node}"
        assert engine_state.origin_of[node] == route.origin, node
        assert engine_state.cls[node] == int(route.route_class), node
        assert engine_state.length[node] == route.length, node


@settings(max_examples=example_budget(120), deadline=None)
@given(random_topologies(), st.data())
def test_hijack_outcomes_identical(graph, data):
    view = RoutingView.from_graph(graph)
    if len(view) < 2:
        return
    nodes = range(len(view))
    target = data.draw(st.sampled_from(nodes), label="target")
    attacker = data.draw(st.sampled_from(nodes), label="attacker")
    if target == attacker:
        return

    simulator = BGPSimulator(view)
    simulator.announce(target, PREFIX)
    report = simulator.announce(attacker, PREFIX)

    engine = RoutingEngine(view)
    result = engine.hijack(target, attacker)

    assert result.polluted_nodes == frozenset(report.adopters)
    assert_states_agree(view, simulator, result.final, PREFIX)


@settings(max_examples=example_budget(60), deadline=None)
@given(random_topologies(), st.data())
def test_legitimate_convergence_identical(graph, data):
    view = RoutingView.from_graph(graph)
    origin = data.draw(st.sampled_from(range(len(view))), label="origin")
    simulator = BGPSimulator(view)
    simulator.announce(origin, PREFIX)
    state = RoutingEngine(view).converge(origin)
    assert_states_agree(view, simulator, state, PREFIX)


@settings(max_examples=example_budget(40), deadline=None)
@given(random_topologies(), st.data())
def test_equivalence_without_tier1_exception(graph, data):
    view = RoutingView.from_graph(graph)
    if len(view) < 2:
        return
    target = data.draw(st.sampled_from(range(len(view))), label="target")
    attacker = data.draw(st.sampled_from(range(len(view))), label="attacker")
    if target == attacker:
        return
    policy = PolicyConfig(tier1_shortest_path=False)
    simulator = BGPSimulator(view, policy)
    simulator.announce(target, PREFIX)
    report = simulator.announce(attacker, PREFIX)
    result = RoutingEngine(view, policy).hijack(target, attacker)
    assert result.polluted_nodes == frozenset(report.adopters)


@settings(max_examples=example_budget(40), deadline=None)
@given(random_topologies(), st.data())
def test_equivalence_with_blocking(graph, data):
    view = RoutingView.from_graph(graph)
    if len(view) < 3:
        return
    nodes = range(len(view))
    target = data.draw(st.sampled_from(nodes), label="target")
    attacker = data.draw(st.sampled_from(nodes), label="attacker")
    if target == attacker:
        return
    blocked = frozenset(
        data.draw(
            st.sets(st.sampled_from(nodes), max_size=len(view) // 2),
            label="blocked",
        )
    ) - {target, attacker}

    def validator(node, route):
        return node in blocked and route.origin == attacker

    simulator = BGPSimulator(view, validator=validator)
    simulator.announce(target, PREFIX)
    report = simulator.announce(attacker, PREFIX)
    result = RoutingEngine(view).hijack(target, attacker, blocked=blocked)
    assert result.polluted_nodes == frozenset(report.adopters)


# -- the parallel executor computes exactly the sequential sweep ------------


def assert_sweeps_identical(reference, candidate):
    """Bit-level equality of two sweep results, ordering included."""
    assert list(reference.keys()) == list(candidate.keys())
    for key in reference:
        a, b = reference[key], candidate[key]
        assert a.scenario == b.scenario, key
        assert a.polluted_asns == b.polluted_asns, key
        assert a.blocked_asns == b.blocked_asns, key
        assert a.address_fraction == b.address_fraction, key


@settings(max_examples=example_budget(10), deadline=None)
@given(random_topologies(), st.data())
def test_parallel_sweep_bit_identical(graph, data):
    """Random topology, random target: every worker count, cache cold and
    hot, reproduces the sequential sweep exactly."""
    asns = sorted(graph.asns())
    if len(asns) < 6:
        return
    target = data.draw(st.sampled_from(asns), label="target")
    reference = HijackLab(graph, seed=1).sweep_target(target)
    for workers in SWEEP_WORKER_COUNTS:
        lab = HijackLab(graph, seed=1, workers=workers)
        cold = lab.sweep_target(target)
        assert_sweeps_identical(reference, cold)
        hot = lab.sweep_target(target)  # baselines now cached
        assert_sweeps_identical(reference, hot)


def test_parallel_sweep_medium_topology(medium_lab):
    """A real pool run (enough work to engage chunking) on the 900-AS
    topology: all worker counts agree with the sequential reference."""
    target = medium_lab.attacker_pool(transit_only=True)[7]
    reference = medium_lab.sweep_target(target, sample=120, seed=11, workers=1)
    for workers in SWEEP_WORKER_COUNTS:
        fresh_cache = ConvergenceCache()
        lab = HijackLab(
            medium_lab.graph,
            plan=medium_lab.plan,
            seed=medium_lab.seed,
            cache=fresh_cache,
        )
        cold = lab.sweep_target(target, sample=120, seed=11, workers=workers)
        assert_sweeps_identical(reference, cold)
        hot = lab.sweep_target(target, sample=120, seed=11, workers=workers)
        assert_sweeps_identical(reference, hot)


def test_parallel_random_attacks_bit_identical(medium_lab):
    """The Fig. 7 workload draws the same pairs and outcomes at any
    worker count, cold or hot cache."""
    reference = medium_lab.random_attacks(40, seed=13, workers=1)
    for workers in SWEEP_WORKER_COUNTS:
        lab = HijackLab(
            medium_lab.graph,
            plan=medium_lab.plan,
            seed=medium_lab.seed,
            workers=workers,
        )
        for _pass in ("cold", "hot"):
            outcomes = lab.random_attacks(40, seed=13)
            assert [o.scenario for o in outcomes] == [
                o.scenario for o in reference
            ]
            assert [o.polluted_asns for o in outcomes] == [
                o.polluted_asns for o in reference
            ]
            assert [o.address_fraction for o in outcomes] == [
                o.address_fraction for o in reference
            ]
