"""The library's central correctness property: the fast engine computes
exactly the stable state the message-passing simulator converges to.

Random Gao–Rexford-shaped topologies (hierarchical provider DAG + random
peering + occasional siblings) are generated with hypothesis; for random
(target, attacker) pairs both engines run the full two-phase hijack and
must agree on every node's installed origin, route class and path length.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.engine import RoutingEngine
from repro.bgp.policy import PolicyConfig
from repro.bgp.simulator import BGPSimulator
from repro.prefixes.prefix import Prefix
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship
from repro.topology.view import RoutingView

PREFIX = Prefix.parse("10.0.0.0/8")


@st.composite
def random_topologies(draw):
    """A random internet-shaped AS graph (guaranteed connected hierarchy)."""
    size = draw(st.integers(min_value=4, max_value=28))
    tier1_count = draw(st.integers(min_value=1, max_value=min(3, size - 1)))
    graph = ASGraph()
    for asn in range(tier1_count):
        graph.add_as(asn, tier1=True)
    for a in range(tier1_count):
        for b in range(a + 1, tier1_count):
            graph.add_relationship(a, b, Relationship.PEER)
    for asn in range(tier1_count, size):
        graph.add_as(asn)
        provider_count = draw(st.integers(min_value=1, max_value=min(3, asn)))
        providers = draw(
            st.lists(
                st.integers(min_value=0, max_value=asn - 1),
                min_size=provider_count, max_size=provider_count,
                unique=True,
            )
        )
        for provider in providers:
            graph.add_relationship(provider, asn, Relationship.CUSTOMER)
    # Random lateral peering between non-tier-1 nodes.
    peer_links = draw(st.integers(min_value=0, max_value=size))
    for _ in range(peer_links):
        a = draw(st.integers(min_value=tier1_count, max_value=size - 1))
        b = draw(st.integers(min_value=tier1_count, max_value=size - 1))
        if a != b and graph.relationship(a, b) is None:
            graph.add_relationship(a, b, Relationship.PEER)
    # Occasional sibling pair (exercises the collapse logic end to end).
    if size > 6 and draw(st.booleans()):
        a = draw(st.integers(min_value=tier1_count, max_value=size - 1))
        b = draw(st.integers(min_value=tier1_count, max_value=size - 1))
        if a != b and graph.relationship(a, b) is None:
            graph.add_relationship(a, b, Relationship.SIBLING)
    return graph


def assert_states_agree(view, simulator, engine_state, prefix):
    for node in range(len(view)):
        route = simulator.route_to(prefix, node)
        if route is None:
            assert not engine_state.has_route(node), (
                f"engine found a route at node {node}, simulator did not"
            )
            continue
        assert engine_state.has_route(node), f"missing route at node {node}"
        assert engine_state.origin_of[node] == route.origin, node
        assert engine_state.cls[node] == int(route.route_class), node
        assert engine_state.length[node] == route.length, node


@settings(max_examples=120, deadline=None)
@given(random_topologies(), st.data())
def test_hijack_outcomes_identical(graph, data):
    view = RoutingView.from_graph(graph)
    if len(view) < 2:
        return
    nodes = range(len(view))
    target = data.draw(st.sampled_from(nodes), label="target")
    attacker = data.draw(st.sampled_from(nodes), label="attacker")
    if target == attacker:
        return

    simulator = BGPSimulator(view)
    simulator.announce(target, PREFIX)
    report = simulator.announce(attacker, PREFIX)

    engine = RoutingEngine(view)
    result = engine.hijack(target, attacker)

    assert result.polluted_nodes == frozenset(report.adopters)
    assert_states_agree(view, simulator, result.final, PREFIX)


@settings(max_examples=60, deadline=None)
@given(random_topologies(), st.data())
def test_legitimate_convergence_identical(graph, data):
    view = RoutingView.from_graph(graph)
    origin = data.draw(st.sampled_from(range(len(view))), label="origin")
    simulator = BGPSimulator(view)
    simulator.announce(origin, PREFIX)
    state = RoutingEngine(view).converge(origin)
    assert_states_agree(view, simulator, state, PREFIX)


@settings(max_examples=40, deadline=None)
@given(random_topologies(), st.data())
def test_equivalence_without_tier1_exception(graph, data):
    view = RoutingView.from_graph(graph)
    if len(view) < 2:
        return
    target = data.draw(st.sampled_from(range(len(view))), label="target")
    attacker = data.draw(st.sampled_from(range(len(view))), label="attacker")
    if target == attacker:
        return
    policy = PolicyConfig(tier1_shortest_path=False)
    simulator = BGPSimulator(view, policy)
    simulator.announce(target, PREFIX)
    report = simulator.announce(attacker, PREFIX)
    result = RoutingEngine(view, policy).hijack(target, attacker)
    assert result.polluted_nodes == frozenset(report.adopters)


@settings(max_examples=40, deadline=None)
@given(random_topologies(), st.data())
def test_equivalence_with_blocking(graph, data):
    view = RoutingView.from_graph(graph)
    if len(view) < 3:
        return
    nodes = range(len(view))
    target = data.draw(st.sampled_from(nodes), label="target")
    attacker = data.draw(st.sampled_from(nodes), label="attacker")
    if target == attacker:
        return
    blocked = frozenset(
        data.draw(
            st.sets(st.sampled_from(nodes), max_size=len(view) // 2),
            label="blocked",
        )
    ) - {target, attacker}

    def validator(node, route):
        return node in blocked and route.origin == attacker

    simulator = BGPSimulator(view, validator=validator)
    simulator.announce(target, PREFIX)
    report = simulator.announce(attacker, PREFIX)
    result = RoutingEngine(view).hijack(target, attacker, blocked=blocked)
    assert result.polluted_nodes == frozenset(report.adopters)
