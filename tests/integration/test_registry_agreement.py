"""Integration: the three registry backends must agree on every verdict.

The RPKI simulation (cert chains + signed ROAs), the ROVER simulation
(DNSSEC reverse-DNS records) and the plain validated-ROA table are three
implementations of the same origin-validation contract. Feeding them the
same publications and querying origin hijacks, sub-prefix hijacks, valid
announcements and unpublished space must produce identical verdicts.
"""

import pytest

from repro.prefixes.addressing import AddressPlan
from repro.prefixes.prefix import Prefix
from repro.registry.publication import PublicationState
from repro.registry.roa import ValidationState
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def plan() -> AddressPlan:
    weights = {asn: float((asn * 37) % 91 + 1) for asn in range(1, 61)}
    return AddressPlan.build(weights, seed=13)


@pytest.fixture(scope="module")
def backends(plan):
    publication = PublicationState.with_participants(
        plan, [asn for asn in plan.all_asns() if asn % 3 != 0], seed=13
    )
    return publication, publication.to_rpki(), publication.to_rover()


def queries(plan):
    rng = make_rng(99, "registry-queries")
    asns = list(plan.all_asns())
    for _ in range(120):
        owner = rng.choice(asns)
        prefix = plan.primary_prefix(owner)
        kind = rng.randrange(4)
        if kind == 0:  # legitimate announcement
            yield prefix, owner
        elif kind == 1:  # origin hijack
            yield prefix, rng.choice([a for a in asns if a != owner])
        elif kind == 2 and prefix.length < 32:  # sub-prefix hijack
            sub = next(prefix.subnets())
            yield sub, rng.choice(asns)
        else:  # unallocated space
            yield Prefix.parse("223.255.0.0/16"), owner


def test_rpki_agrees_with_table(plan, backends):
    publication, rpki, _ = backends
    table = rpki.validated_table()
    for prefix, origin in queries(plan):
        assert table.validate(prefix, origin) is publication.validate(
            prefix, origin
        ), (str(prefix), origin)


def test_rover_agrees_on_decisive_verdicts(plan, backends):
    publication, _, rover = backends
    for prefix, origin in queries(plan):
        expected = publication.validate(prefix, origin)
        got = rover.validate(prefix, origin)
        if expected is ValidationState.VALID:
            assert got is ValidationState.VALID, (str(prefix), origin)
        elif expected is ValidationState.INVALID:
            # ROVER's RLOCK can only strengthen: INVALID stays INVALID.
            assert got is ValidationState.INVALID, (str(prefix), origin)
        else:
            # NOT_FOUND space: ROVER may also say INVALID when an RLOCK
            # covers the query (it is *more* protective, never less).
            assert got in (
                ValidationState.NOT_FOUND, ValidationState.INVALID,
            ), (str(prefix), origin)


def test_unpublished_owner_is_not_found_everywhere(plan, backends):
    publication, rpki, rover = backends
    unpublished = next(
        asn for asn in plan.all_asns() if not publication.has_published(asn)
    )
    prefix = plan.primary_prefix(unpublished)
    hijacker = next(a for a in plan.all_asns() if a != unpublished)
    assert publication.validate(prefix, hijacker) is ValidationState.NOT_FOUND
    assert rpki.validate(prefix, hijacker) is ValidationState.NOT_FOUND
    assert rover.validate(prefix, hijacker) is ValidationState.NOT_FOUND
