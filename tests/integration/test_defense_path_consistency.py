"""Integration: the lab's engine path and simulator path must agree under
a full Defense (ROV deployment + manual filters + stub filters).

``HijackLab._run`` drives the fast engine with a blocked-node set and a
first-hop flag; ``HijackLab.animate`` drives the message simulator with a
per-candidate validator. Both derive from the same Defense — any drift
between the two wiring paths is a correctness bug this test catches.
"""

import pytest

from repro.attacks.lab import HijackLab
from repro.defense.deployment import Defense, FilterRule
from repro.defense.strategies import top_degree_deployment
from repro.registry.publication import PublicationState
from repro.topology.classify import stub_asns, transit_asns
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def defended_lab(medium_graph):
    lab = HijackLab(medium_graph, seed=7)
    publication = PublicationState.full(lab.plan)
    strategy = top_degree_deployment(medium_graph, 25)
    some_transit = sorted(transit_asns(medium_graph))[5]
    sample_prefix = lab.target_prefix(sorted(stub_asns(medium_graph))[0])
    defense = Defense(
        strategy=strategy,
        authority=publication.table(),
        manual_filters=(
            FilterRule(
                filtering_asn=some_transit,
                prefix=sample_prefix,
                allowed_origins=frozenset(
                    {lab.plan.origin_of(sample_prefix) or -1}
                ),
            ),
        ),
        stub_filter=True,
    )
    return lab.with_defense(defense)


def _pairs(lab, count, seed):
    rng = make_rng(seed, "consistency-pairs")
    asns = lab.graph.asns()
    pairs = []
    while len(pairs) < count:
        target, attacker = rng.sample(asns, 2)
        if lab.view.node_of(target) == lab.view.node_of(attacker):
            continue
        pairs.append((target, attacker))
    return pairs


def test_engine_and_simulator_agree_under_full_defense(defended_lab):
    for target, attacker in _pairs(defended_lab, 6, seed=31):
        outcome = defended_lab.origin_hijack(target, attacker)
        _legit, attack_report = defended_lab.animate(target, attacker)
        sim_polluted = defended_lab.view.expand(attack_report.adopters) - {attacker}
        assert sim_polluted == outcome.polluted_asns, (target, attacker)


def test_stub_attackers_blocked_in_both_paths(defended_lab):
    stubs = sorted(stub_asns(defended_lab.graph))
    rng = make_rng(32, "stub-pairs")
    target = sorted(transit_asns(defended_lab.graph))[0]
    for attacker in rng.sample(stubs, 4):
        if defended_lab.view.node_of(attacker) == defended_lab.view.node_of(target):
            continue
        outcome = defended_lab.origin_hijack(target, attacker)
        _legit, attack_report = defended_lab.animate(target, attacker)
        sim_polluted = defended_lab.view.expand(attack_report.adopters) - {attacker}
        assert sim_polluted == outcome.polluted_asns
        # A stub attacker's announcement to its providers is dropped, so
        # any pollution must have leaked through peer links only.
        if not defended_lab.graph.peers(attacker):
            assert outcome.pollution_count == 0
