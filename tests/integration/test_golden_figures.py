"""Golden-figure regression tests: pinned small-topology paper slices.

Recomputes reduced-scale slices of the fig2 (vulnerability by depth),
fig5 (incremental deployment) and fig7 (detector comparison) metrics and
compares them against the pinned fixture in ``golden/small_figures.json``.
The equivalence suite proves the parallel executor matches the
sequential path; this layer pins the *absolute numbers*, so a future
perf refactor that changed outcomes identically everywhere (and thus
slipped past equivalence testing) still cannot silently move paper
results.

Tolerance policy (documented per the issue):

* anything countable — pollution counts, attacker counts, severity
  (area under a CCDF), missed-attack counts — is compared **exactly**;
* derived ratios (means, miss rates, improvement factors) are compared
  with a relative tolerance of 1e-9: they are deterministic floats, and
  the slack only forgives benign floating-point reassociation (e.g. a
  future vectorized summation), never a changed outcome.

To regenerate after an *intentional* model change::

    PYTHONPATH=src python tests/integration/test_golden_figures.py --regenerate

and justify the fixture diff in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.attacks.lab import HijackLab
from repro.core.deployment_analysis import compare_strategies
from repro.core.detection_analysis import compare_detectors, paper_probe_sets
from repro.core.roles import resolve_roles
from repro.core.vulnerability import VulnerabilityProfile
from repro.defense.strategies import paper_ladder
from repro.registry.publication import PublicationState
from repro.topology.generator import GeneratorConfig, generate_topology

GOLDEN_PATH = Path(__file__).parent / "golden" / "small_figures.json"

# Small enough to run in seconds, large enough that every paper role
# (deep chains, a tier-2 layer, a small region) exists.
AS_COUNT = 500
SEED = 2014
SWEEP_SAMPLE = 60
DETECTION_ATTACKS = 150
RATIO_TOLERANCE = 1e-9


# Both convergence backends recompute every slice against the same
# pinned numbers: the fixture is backend-independent by the backend
# contract (docs/model.md), so a kernel divergence that slipped past the
# checksum battery would still trip these absolute comparisons.
@pytest.fixture(scope="module", params=["reference", "array"])
def lab(request) -> HijackLab:
    return HijackLab(
        generate_topology(GeneratorConfig.scaled(AS_COUNT, seed=SEED)),
        seed=SEED,
        backend=request.param,
    )


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; regenerate with "
        "PYTHONPATH=src python tests/integration/test_golden_figures.py --regenerate"
    )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def compute_fig2_slice(lab: HijackLab) -> dict:
    roles = resolve_roles(lab.graph)
    slice_data: dict[str, dict] = {}
    for label, target in roles.fig2_targets().items():
        outcomes = lab.sweep_target(target, sample=SWEEP_SAMPLE, seed=SEED)
        profile = VulnerabilityProfile.from_outcomes(
            target, outcomes.values(), label=label
        )
        slice_data[label] = {
            "target": target,
            "attackers": profile.summary.count,
            "max_pollution": profile.summary.maximum,
            "severity": profile.severity(),
            "mean_pollution": profile.summary.mean,
        }
    return slice_data


def compute_fig5_slice(lab: HijackLab) -> dict:
    ladder = paper_ladder(lab.graph, seed=SEED)
    rungs = [ladder[0], ladder[3], ladder[-1]]  # baseline, tier-1, biggest core
    authority = PublicationState.full(lab.plan).table()
    comparison = compare_strategies(
        lab,
        resolve_roles(lab.graph).deep_target,
        rungs,
        authority,
        transit_only=True,
        sample=SWEEP_SAMPLE,
        seed=SEED,
    )
    slice_data: dict[str, dict] = {}
    for evaluation in comparison.evaluations:
        profile = evaluation.profile
        slice_data[evaluation.strategy.name] = {
            "deployers": len(evaluation.strategy),
            "attackers": profile.summary.count,
            "severity": profile.severity(),
            "mean_successful": profile.summary.mean_successful,
        }
    slice_data["improvement_factors"] = comparison.improvement_factors()
    return slice_data


def compute_fig7_slice(lab: HijackLab) -> dict:
    comparison = compare_detectors(
        lab,
        paper_probe_sets(lab, seed=SEED),
        attack_count=DETECTION_ATTACKS,
        seed=SEED,
    )
    return {
        study.detector.probes.name: {
            "missed": int(study.undetected_summary()["missed"]),
            "max_missed_pollution": int(study.undetected_summary()["max_pollution"]),
            "miss_rate": study.miss_rate(),
        }
        for study in comparison.studies
    }


def compute_golden(lab: HijackLab) -> dict:
    return {
        "config": {
            "as_count": AS_COUNT,
            "seed": SEED,
            "sweep_sample": SWEEP_SAMPLE,
            "detection_attacks": DETECTION_ATTACKS,
        },
        "fig2": compute_fig2_slice(lab),
        "fig5": compute_fig5_slice(lab),
        "fig7": compute_fig7_slice(lab),
    }


# -- the tests ---------------------------------------------------------------


def test_golden_config_matches(golden):
    assert golden["config"] == {
        "as_count": AS_COUNT,
        "seed": SEED,
        "sweep_sample": SWEEP_SAMPLE,
        "detection_attacks": DETECTION_ATTACKS,
    }, "test parameters changed — regenerate the golden fixture deliberately"


def test_fig2_slice_matches_golden(lab, golden):
    actual = compute_fig2_slice(lab)
    assert set(actual) == set(golden["fig2"])
    for label, pinned in golden["fig2"].items():
        computed = actual[label]
        # Counts pin exactly; the mean is a ratio (tolerance documented above).
        for key in ("target", "attackers", "max_pollution", "severity"):
            assert computed[key] == pinned[key], (label, key)
        assert computed["mean_pollution"] == pytest.approx(
            pinned["mean_pollution"], rel=RATIO_TOLERANCE
        ), label


def test_fig5_slice_matches_golden(lab, golden):
    actual = compute_fig5_slice(lab)
    assert set(actual) == set(golden["fig5"])
    for name, pinned in golden["fig5"].items():
        computed = actual[name]
        if name == "improvement_factors":
            assert set(computed) == set(pinned)
            for strategy, factor in pinned.items():
                assert computed[strategy] == pytest.approx(
                    factor, rel=RATIO_TOLERANCE
                ), strategy
            continue
        for key in ("deployers", "attackers", "severity"):
            assert computed[key] == pinned[key], (name, key)
        assert computed["mean_successful"] == pytest.approx(
            pinned["mean_successful"], rel=RATIO_TOLERANCE
        ), name


def test_fig7_slice_matches_golden(lab, golden):
    actual = compute_fig7_slice(lab)
    assert set(actual) == set(golden["fig7"])
    for name, pinned in golden["fig7"].items():
        computed = actual[name]
        assert computed["missed"] == pinned["missed"], name
        assert computed["max_missed_pollution"] == pinned["max_missed_pollution"], name
        assert computed["miss_rate"] == pytest.approx(
            pinned["miss_rate"], rel=RATIO_TOLERANCE
        ), name


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("usage: python tests/integration/test_golden_figures.py --regenerate")
    fresh_lab = HijackLab(
        generate_topology(GeneratorConfig.scaled(AS_COUNT, seed=SEED)), seed=SEED
    )
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(compute_golden(fresh_lab), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN_PATH}")
