"""End-to-end: the live daemon against the offline monitor.

The acceptance pins for the monitoring service (ISSUE 9):

* the daemon boots, two tenants register live, a replayed 13-cell
  taxonomy stream produces — over the JSON API — the same verdict set
  as the offline :class:`~repro.stream.monitor.OnlineMonitor` path
  (prefix, verdict, origin sets and *virtual* latency pinned; per-shard
  event counters are the one legitimate divergence);
* the auto-mitigation hook's DefenseActivate + deaggregation measurably
  restores the victim's routes;
* ``repro-bgp serve`` works as a real subprocess over real sockets.
"""

import json
import os
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.attacks.lab import HijackLab
from repro.detection.detector import HijackDetector
from repro.detection.probes import top_degree_probes
from repro.detection.taxonomy import grid_cells
from repro.registry.neighbors import NeighborRegistry
from repro.service.api import ServiceThread
from repro.service.daemon import MonitorService
from repro.stream.events import RoaPublish, compile_scenario, event_to_dict
from repro.stream.monitor import OnlineMonitor
from repro.stream.replay import StreamReplayer
from repro.util.rng import make_rng

REPO_ROOT = Path(__file__).resolve().parents[2]


def http(base_url, method, path, payload=None, raw=None):
    if raw is not None:
        data = raw.encode("utf-8")
    elif payload is not None:
        data = json.dumps(payload).encode("utf-8")
    else:
        data = None
    request = urllib.request.Request(base_url + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def alarm_key(payload_or_alarm):
    """The parity tuple: everything except per-shard event counters."""
    if isinstance(payload_or_alarm, dict):
        d = payload_or_alarm
        return (
            d["prefix"], d["verdict"], tuple(d["origins"]),
            tuple(d["invalid_origins"]), d["latency_time"],
        )
    alarm = payload_or_alarm
    return (
        str(alarm.prefix), alarm.verdict, alarm.origins,
        alarm.invalid_origins, alarm.latency_time,
    )


@pytest.fixture(scope="module")
def workload(medium_graph):
    """Two victims, the full 13-cell grid, one deterministic JSONL stream."""
    lab = HijackLab(medium_graph, seed=7)
    rng = make_rng(7, "service-e2e")
    pool = list(lab.attacker_pool(transit_only=True))
    targets = (pool[3], pool[5])
    attackers = [
        asn for asn in rng.sample(pool, len(pool))
        if all(lab.view.node_of(asn) != lab.view.node_of(t) for t in targets)
    ]
    events = []
    for index, (kind, path_kind) in enumerate(grid_cells()):
        target = targets[index % 2]
        scenario = lab.build_scenario(
            target,
            attackers[index % len(attackers)],
            kind=kind,
            path_kind=path_kind,
        )
        events.extend(compile_scenario(scenario, start=float(index * 4), dwell=2.0))
    events.sort(key=lambda event: event.at)
    lines = [
        json.dumps(event_to_dict(event), sort_keys=True, separators=(",", ":"))
        for event in events
    ]
    return lab, targets, events, lines


class TestDaemonParity:
    def offline_reference(self, lab, targets, events, probes):
        replayer = StreamReplayer(lab)
        replayer.monitor = OnlineMonitor(
            lab.view,
            HijackDetector(
                probes,
                authority=replayer.authority,
                neighbors=NeighborRegistry.from_graph(lab.graph),
                relationships=lab.graph,
            ),
        )
        for target in targets:
            replayer.submit(
                RoaPublish(
                    at=0.0, prefix=lab.target_prefix(target), origin_asn=target
                )
            )
        replayer.run(events)
        return replayer.monitor.alarms

    def test_api_verdicts_match_offline_monitor(self, workload):
        lab, targets, events, lines = workload
        probes = top_degree_probes(lab.graph)
        offline = self.offline_reference(lab, targets, events, probes)
        assert len(offline) >= len(grid_cells()) - 1  # the grid fires broadly

        for shards in (1, 2):
            service = MonitorService(lab, shards=shards, probes=probes)
            thread = ServiceThread(service).start()
            try:
                for index, target in enumerate(targets):
                    registration = http(
                        thread.base_url,
                        "POST", f"/tenants/tenant{index}/prefixes",
                        payload={
                            "prefix": str(lab.target_prefix(target)),
                            "origin": target,
                        },
                    )
                    assert registration["origin"] == target
                health = http(thread.base_url, "GET", "/health")
                assert health["tenants"] == 2

                outcome = http(
                    thread.base_url, "POST", "/events", raw="\n".join(lines)
                )
                assert outcome["malformed"] == 0
                assert outcome["accepted"] == len(lines)

                served = http(thread.base_url, "GET", "/verdicts")["verdicts"]
            finally:
                thread.stop()

            assert {alarm_key(v) for v in served} == {
                alarm_key(alarm) for alarm in offline
            }
            # Every verdict was attributed: both tenants' prefixes were
            # attacked, so each side of the grid reached its tenant.
            tenants_paged = {v["tenant"] for v in served}
            assert {"tenant0", "tenant1"} <= tenants_paged

    def test_latency_stats_populated_per_tenant(self, workload):
        lab, targets, _events, lines = workload
        probes = top_degree_probes(lab.graph)
        service = MonitorService(lab, shards=2, probes=probes)
        for index, target in enumerate(targets):
            service.register(
                f"tenant{index}", lab.target_prefix(target), target
            )
        for line in lines:
            service.ingest_line(line)
        service.poll()
        for index in range(2):
            stats = service.tenant_stats(f"tenant{index}")
            assert stats["latency"]["count"] >= 1
            assert stats["latency"]["p50"] is not None


class TestAutoMitigation:
    def test_defense_activate_restores_victim_routes(self, workload):
        lab, targets, _events, _lines = workload
        target = targets[0]
        probes = top_degree_probes(lab.graph)
        rng = make_rng(7, "service-e2e-mitigation")
        pool = [
            asn for asn in lab.attacker_pool(transit_only=True)
            if lab.view.node_of(asn) != lab.view.node_of(target)
        ]
        attacker = rng.choice(pool)
        deployers = tuple(sorted(probes.asns)[:3])

        service = MonitorService(lab, shards=2, probes=probes)
        service.register(
            "victim", lab.target_prefix(target), target,
            auto_mitigate=True, deployers=deployers,
        )
        scenario = lab.subprefix_hijack(target, attacker).scenario
        for event in compile_scenario(scenario, start=1.0):
            service.ingest_event(event)
        service.poll()

        assert len(service.mitigations) == 1
        record = service.mitigations[0]
        assert record.prefix == str(scenario.prefix)
        assert record.deployers == deployers
        # The deaggregated more-specifics beat the hijacked NLRI by
        # longest-prefix match: the victim's reach measurably recovers.
        assert record.coverage_after > record.coverage_before
        assert record.coverage_after > 0.9
        for shard in range(service.plane.shards):
            defense = service.plane.replayer(shard).defense()
            assert set(deployers) <= set(defense.strategy.deployers)


class TestServeSubprocess:
    def test_serve_smoke_over_real_sockets(self, tmp_path):
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--as-count", "300", "--port", "0", "--shards", "2",
            ],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stdout.readline().strip()
            assert banner.startswith("service listening on http://")
            base_url = banner.split()[3]

            http(base_url, "POST", "/tenants/acme/prefixes",
                 payload={"prefix": "198.51.100.0/24", "origin": 250})
            outcome = http(
                base_url, "POST", "/events",
                raw="\n".join([
                    json.dumps({"kind": "roa-publish", "at": 0.0,
                                "prefix": "198.51.100.0/24", "origin": 250}),
                    json.dumps({"kind": "announce", "at": 0.0,
                                "prefix": "198.51.100.0/24", "origin": 250}),
                    json.dumps({"kind": "announce", "at": 1.0,
                                "prefix": "198.51.100.0/24", "origin": 30}),
                ]),
            )
            verdicts = outcome["verdicts"]
            assert [(v["tenant"], v["verdict"]) for v in verdicts] == [
                ("acme", "hijack")
            ]
            stats = http(base_url, "GET", "/tenants/acme/stats")
            assert stats["latency"]["count"] == 1
            assert stats["latency"]["p50"] == 0.0  # unbatched: judged on arrival

            assert http(base_url, "POST", "/shutdown")["status"] == "stopping"
            stdout, stderr = process.communicate(timeout=60)
            assert process.returncode == 0
            assert "served" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
