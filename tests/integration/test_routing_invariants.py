"""Integration: structural invariants of converged routing states.

The invariants are checked on the message simulator's installed routes,
which carry their full install-time AS paths. (The fast engine stores only
final next-hop pointers; in the paper's announce-only model a neighbor may
upgrade its route *after* exporting, leaving perfectly valid "stale"
entries whose final-state pointer chains are not length-consistent — the
install-time path is the authoritative object, and engine/simulator
equality of (origin, class, length) is covered by
``test_engine_equivalence``.)
"""

import pytest

from repro.bgp.engine import RoutingEngine
from repro.bgp.simulator import BGPSimulator
from repro.prefixes.prefix import Prefix
from repro.topology.relationships import RouteClass
from repro.topology.view import RoutingView
from repro.util.rng import make_rng

PREFIX = Prefix.parse("10.0.0.0/8")


@pytest.fixture(scope="module")
def view(medium_graph) -> RoutingView:
    return RoutingView.from_graph(medium_graph)


def edge_class(view, node, neighbor) -> RouteClass:
    """Class a route takes at *node* when learned from *neighbor*."""
    if neighbor in view.customers[node]:
        return RouteClass.CUSTOMER
    if neighbor in view.peers[node]:
        return RouteClass.PEER
    assert neighbor in view.providers[node]
    return RouteClass.PROVIDER


def check_path_valley_free(view, node, route):
    """The install-time path must be a valley-free, loop-free walk."""
    hops = [node, *route.path]
    assert len(set(hops)) == len(hops), f"loop in path at node {node}"
    classes = [
        edge_class(view, receiver, sender)
        for receiver, sender in zip(hops, hops[1:])
    ]
    assert classes[0] is route.route_class
    # Shape: zero or more CUSTOMER hops (downhill, seen from the
    # receiver), at most one PEER hop, then zero or more PROVIDER hops.
    phase = 0  # 0 = customer hops, 1 = after the peer hop, 2 = providers
    for hop_class in reversed(classes):
        # Walk origin -> node: the route climbs while receivers see
        # CUSTOMER, may cross one peer link, then descends.
        if hop_class is RouteClass.CUSTOMER:
            assert phase == 0, "uphill after peer/downhill = valley"
        elif hop_class is RouteClass.PEER:
            assert phase == 0, "second peer hop = valley"
            phase = 1
        else:
            phase = 2


def run_hijack(view):
    simulator = BGPSimulator(view)
    rng = make_rng(41, "invariants")
    target, attacker = rng.sample(range(len(view)), 2)
    simulator.announce(target, PREFIX)
    simulator.announce(attacker, PREFIX)
    return simulator


def test_legitimate_routes_valley_free_and_consistent(view):
    simulator = BGPSimulator(view)
    rng = make_rng(42, "invariant-origins")
    origin = rng.randrange(len(view))
    simulator.announce(origin, PREFIX)
    reached = 0
    for node in range(len(view)):
        route = simulator.route_to(PREFIX, node)
        assert route is not None, f"node {node} unreachable"
        reached += 1
        if node == origin:
            continue
        assert route.origin == origin
        assert route.length == len(route.path)
        assert route.path[-1] == origin
        check_path_valley_free(view, node, route)
    assert reached == len(view)


def test_hijacked_routes_valley_free_and_consistent(view):
    simulator = run_hijack(view)
    for node in range(len(view)):
        route = simulator.route_to(PREFIX, node)
        if route is None or not route.path:
            continue
        assert route.path[-1] == route.origin
        check_path_valley_free(view, node, route)


def test_preference_no_node_holds_a_strictly_worse_class_than_available(view):
    """No non-tier-1 node may end with a provider route while a customer
    route was available from a customer that exports to it."""
    simulator = run_hijack(view)
    for node in range(len(view)):
        route = simulator.route_to(PREFIX, node)
        if route is None or view.is_tier1[node]:
            continue
        if route.route_class is RouteClass.PROVIDER:
            for customer in view.customers[node]:
                customer_route = simulator.route_to(PREFIX, customer)
                if customer_route is None:
                    continue
                # The customer's route, if exportable upward, would have
                # been offered; node must not have ignored it.
                assert customer_route.route_class not in (
                    RouteClass.ORIGIN, RouteClass.CUSTOMER,
                ), f"node {node} ignored a customer route via {customer}"


def test_blocking_invariants(view):
    """Blocked nodes are never polluted; blocking everyone stops the attack.

    Note that pollution is *not* formally monotone in the blocked set (a
    blocked peer can redirect a tier-1 onto a wider-exporting customer
    route), so we assert only the guarantees the model actually makes.
    """
    engine = RoutingEngine(view)
    rng = make_rng(8, "invariant-blocking")
    target, attacker = rng.sample(range(len(view)), 2)
    blocked = frozenset(rng.sample(range(len(view)), 40)) - {target, attacker}
    result = engine.hijack(target, attacker, blocked=blocked)
    assert not result.polluted_nodes & blocked
    everyone = frozenset(range(len(view))) - {attacker}
    total_block = engine.hijack(target, attacker, blocked=everyone)
    assert total_block.polluted_nodes == frozenset()
