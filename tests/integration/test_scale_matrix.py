"""The attack-taxonomy matrix at full CAIDA scale, on the batched lab.

The committed ``results/data/attack_matrix.json`` pins the 13-cell
(prefix axis × path axis) taxonomy grid against the deployment ladder
at the experiment suite's reduced scale. This module re-runs the same
grid — same rungs (undefended, smallest ladder rung, largest), same two
detector configurations — at the paper's actual 42,697-AS scale through
the batched array lab, and cross-checks the directional claims the
committed matrix records:

* the ROV type-1 blind spot (valid claimed origin: ``detected_roa`` <
  ``detected_full`` undefended) survives the scale jump;
* the path-aware detector never does worse than ROV alone, anywhere in
  the grid;
* the largest deployment rung never *increases* a cell's mean pollution
  over the undefended sweep.

The sweep is minutes-cheap but well beyond the per-PR budget, so the
module is marked ``scale`` and gated on ``REPRO_SCALE=1`` — the nightly
fuzz workflow sets it (see docs/testing.md).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.attacks.lab import HijackLab
from repro.defense.deployment import Defense
from repro.defense.strategies import paper_ladder
from repro.detection.detector import HijackDetector
from repro.detection.probes import top_degree_probes
from repro.detection.taxonomy import grid_cells
from repro.registry.neighbors import NeighborRegistry
from repro.registry.publication import PublicationState
from repro.topology.caida import load_caida
from repro.topology.scalefixture import ScaleFixtureConfig, write_scale_fixture

pytestmark = [
    pytest.mark.scale,
    pytest.mark.skipif(
        not os.environ.get("REPRO_SCALE"),
        reason="full-CAIDA-scale test; set REPRO_SCALE=1 (nightly job) to run",
    ),
]

ATTACKS_PER_CELL = 8
BATCH_ORIGINS = 8
COMMITTED_MATRIX = (
    Path(__file__).resolve().parents[2] / "results" / "data" / "attack_matrix.json"
)


@pytest.fixture(scope="module")
def scale_matrix():
    """The full 13-cell × 3-rung grid swept once at 42,697 ASes."""
    from repro.core.roles import resolve_roles

    committed = json.loads(COMMITTED_MATRIX.read_text(encoding="utf-8"))

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-scale-matrix-") as tmp:
        path = Path(tmp) / "caida-scale.txt.gz"
        config = ScaleFixtureConfig()
        write_scale_fixture(path, config)
        graph = load_caida(path)

    lab = HijackLab(graph, backend="array", batch_origins=BATCH_ORIGINS, seed=2014)
    target = resolve_roles(graph).deep_target
    ladder = paper_ladder(graph, seed=2014)
    rungs = [None, ladder[0], ladder[-1]]
    authority = PublicationState.full(lab.plan).table()
    probes = top_degree_probes(graph, count=62)
    detectors = {
        "roa": HijackDetector(probes=probes, authority=authority),
        "full": HijackDetector(
            probes=probes, authority=authority,
            neighbors=NeighborRegistry.from_graph(graph), relationships=graph,
        ),
    }
    rows: dict[tuple[str, str, str], dict[str, object]] = {}
    for kind, path_kind in grid_cells():
        for rung in rungs:
            defense = (
                Defense()
                if rung is None
                else Defense(strategy=rung, authority=authority)
            )
            outcomes = lab.with_defense(defense).sweep_target(
                target,
                transit_only=True,
                sample=ATTACKS_PER_CELL,
                seed=2014,
                kind=kind,
                path_kind=path_kind,
                forged_depth=2,
            )
            launched = [o for o in outcomes.values() if o.claimed_path]
            pollution = [o.pollution_count for o in launched]
            row: dict[str, object] = {
                "launched": len(launched),
                "mean_pollution": (
                    sum(pollution) / len(pollution) if pollution else 0.0
                ),
            }
            for name, detector in detectors.items():
                reports = [detector.observe(o) for o in launched]
                row[f"detected_{name}"] = (
                    sum(1 for r in reports if r.detected) / len(reports)
                    if reports
                    else 0.0
                )
            strategy = "none" if rung is None else rung.name
            rows[(kind.value, path_kind.value, strategy)] = row
    return committed, rows


def test_grid_covers_every_committed_cell(scale_matrix):
    """Same 13 cells × 3 strategies as the committed reduced-scale matrix."""
    committed, rows = scale_matrix
    committed_keys = {
        (row["kind"], row["path_kind"], row["strategy"])
        for row in committed["tables"]["matrix"]
    }
    assert set(rows) == committed_keys
    assert len(rows) == committed["summary"]["cells"] * 3


def test_rov_type1_blind_spot_survives_scale(scale_matrix):
    """The committed headline — ROV cannot classify a type-1 origin
    hijack, the path-aware detector can — holds at 42,697 ASes too."""
    committed, rows = scale_matrix
    assert committed["summary"]["rov_type1_blind_spot"] is True
    undefended = rows[("origin", "type-1", "none")]
    assert undefended["launched"] > 0
    assert undefended["detected_roa"] < undefended["detected_full"]


def test_path_aware_detector_dominates_rov(scale_matrix):
    """Nowhere in the grid does adding path awareness lose detections —
    the same dominance the committed matrix shows row for row."""
    committed, rows = scale_matrix
    for row in committed["tables"]["matrix"]:
        assert row["detected_full"] >= row["detected_roa"], row
    for key, row in rows.items():
        assert row["detected_full"] >= row["detected_roa"], key


def test_largest_rung_never_increases_pollution(scale_matrix):
    """The largest deployment rung's mean pollution stays at or below the
    undefended sweep in every cell, as in the committed matrix."""
    committed, rows = scale_matrix
    largest = committed["summary"]["strategies"][-1]
    for kind, path_kind in {(k, p) for k, p, _ in rows}:
        undefended = rows[(kind, path_kind, "none")]
        defended = rows[(kind, path_kind, largest)]
        assert defended["mean_pollution"] <= undefended["mean_pollution"] + 1e-9, (
            kind,
            path_kind,
        )
