"""Unit tests for the policy rules (Section III of the paper)."""

from repro.bgp.policy import PolicyConfig, exports_to_peers_and_providers, prefers
from repro.topology.relationships import RouteClass


class TestPrefers:
    def test_customer_beats_peer_regardless_of_length(self):
        assert prefers(False, RouteClass.CUSTOMER, 9, RouteClass.PEER, 1)

    def test_peer_beats_provider(self):
        assert prefers(False, RouteClass.PEER, 5, RouteClass.PROVIDER, 2)

    def test_shorter_wins_within_class(self):
        assert prefers(False, RouteClass.PEER, 2, RouteClass.PEER, 3)
        assert not prefers(False, RouteClass.PEER, 3, RouteClass.PEER, 2)

    def test_exact_tie_keeps_incumbent(self):
        assert not prefers(False, RouteClass.PEER, 2, RouteClass.PEER, 2)

    def test_nothing_beats_origin(self):
        assert not prefers(False, RouteClass.CUSTOMER, 1, RouteClass.ORIGIN, 0)

    def test_tier1_orders_by_length_first(self):
        # The Section VI blind-spot rule: a shorter peer route beats a
        # longer customer route at a tier-1.
        assert prefers(True, RouteClass.PEER, 2, RouteClass.CUSTOMER, 3)
        assert not prefers(True, RouteClass.CUSTOMER, 3, RouteClass.PEER, 2)

    def test_tier1_length_tie_keeps_incumbent_even_for_better_class(self):
        # This is exactly why AS6450's customer routes could not displace
        # the tier-1s' equal-length peer routes to AS7314 in the paper.
        assert not prefers(True, RouteClass.CUSTOMER, 2, RouteClass.PEER, 2)

    def test_tier1_exception_can_be_disabled(self):
        assert not prefers(
            True, RouteClass.PEER, 2, RouteClass.CUSTOMER, 3,
            tier1_shortest_path=False,
        )
        assert prefers(
            True, RouteClass.CUSTOMER, 9, RouteClass.PEER, 2,
            tier1_shortest_path=False,
        )


class TestExportRule:
    def test_origin_and_customer_routes_export_widely(self):
        assert exports_to_peers_and_providers(RouteClass.ORIGIN)
        assert exports_to_peers_and_providers(RouteClass.CUSTOMER)

    def test_peer_and_provider_routes_export_to_customers_only(self):
        assert not exports_to_peers_and_providers(RouteClass.PEER)
        assert not exports_to_peers_and_providers(RouteClass.PROVIDER)


class TestPolicyConfig:
    def test_defaults_match_paper(self):
        config = PolicyConfig()
        assert config.tier1_shortest_path
        assert not config.first_hop_stub_filter
        assert config.max_generations >= 10
