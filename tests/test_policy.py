"""Unit tests for the policy rules (Section III of the paper)."""

import pytest

from repro.bgp.engine import RoutingEngine
from repro.bgp.policy import PolicyConfig, exports_to_peers_and_providers, prefers
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship, RouteClass
from repro.topology.view import RoutingView


class TestPrefers:
    def test_customer_beats_peer_regardless_of_length(self):
        assert prefers(False, RouteClass.CUSTOMER, 9, RouteClass.PEER, 1)

    def test_peer_beats_provider(self):
        assert prefers(False, RouteClass.PEER, 5, RouteClass.PROVIDER, 2)

    def test_shorter_wins_within_class(self):
        assert prefers(False, RouteClass.PEER, 2, RouteClass.PEER, 3)
        assert not prefers(False, RouteClass.PEER, 3, RouteClass.PEER, 2)

    def test_exact_tie_keeps_incumbent(self):
        assert not prefers(False, RouteClass.PEER, 2, RouteClass.PEER, 2)

    def test_nothing_beats_origin(self):
        assert not prefers(False, RouteClass.CUSTOMER, 1, RouteClass.ORIGIN, 0)

    def test_tier1_orders_by_length_first(self):
        # The Section VI blind-spot rule: a shorter peer route beats a
        # longer customer route at a tier-1.
        assert prefers(True, RouteClass.PEER, 2, RouteClass.CUSTOMER, 3)
        assert not prefers(True, RouteClass.CUSTOMER, 3, RouteClass.PEER, 2)

    def test_tier1_length_tie_keeps_incumbent_even_for_better_class(self):
        # This is exactly why AS6450's customer routes could not displace
        # the tier-1s' equal-length peer routes to AS7314 in the paper.
        assert not prefers(True, RouteClass.CUSTOMER, 2, RouteClass.PEER, 2)

    def test_tier1_exception_can_be_disabled(self):
        assert not prefers(
            True, RouteClass.PEER, 2, RouteClass.CUSTOMER, 3,
            tier1_shortest_path=False,
        )
        assert prefers(
            True, RouteClass.CUSTOMER, 9, RouteClass.PEER, 2,
            tier1_shortest_path=False,
        )


# The full Gao–Rexford preference table, pinned case by case: LOCAL_PREF
# class first (customer > peer > provider), then path length, then the
# incumbent keeps on an exact tie. Each row is (new_class, new_length,
# old_class, old_length, beats_incumbent).
GAO_REXFORD_TABLE = [
    # better class wins regardless of length
    (RouteClass.CUSTOMER, 9, RouteClass.PEER, 1, True),
    (RouteClass.CUSTOMER, 9, RouteClass.PROVIDER, 1, True),
    (RouteClass.PEER, 9, RouteClass.PROVIDER, 1, True),
    # worse class loses regardless of length
    (RouteClass.PEER, 1, RouteClass.CUSTOMER, 9, False),
    (RouteClass.PROVIDER, 1, RouteClass.CUSTOMER, 9, False),
    (RouteClass.PROVIDER, 1, RouteClass.PEER, 9, False),
    # same class: strictly shorter path wins
    (RouteClass.CUSTOMER, 2, RouteClass.CUSTOMER, 3, True),
    (RouteClass.PEER, 2, RouteClass.PEER, 3, True),
    (RouteClass.PROVIDER, 2, RouteClass.PROVIDER, 3, True),
    (RouteClass.CUSTOMER, 3, RouteClass.CUSTOMER, 2, False),
    (RouteClass.PEER, 3, RouteClass.PEER, 2, False),
    (RouteClass.PROVIDER, 3, RouteClass.PROVIDER, 2, False),
    # exact tie keeps the incumbent, in every class
    (RouteClass.CUSTOMER, 2, RouteClass.CUSTOMER, 2, False),
    (RouteClass.PEER, 2, RouteClass.PEER, 2, False),
    (RouteClass.PROVIDER, 2, RouteClass.PROVIDER, 2, False),
    # nothing displaces the origin's own route
    (RouteClass.CUSTOMER, 1, RouteClass.ORIGIN, 0, False),
    (RouteClass.PEER, 1, RouteClass.ORIGIN, 0, False),
]

# Tier-1 rows: length first (class ignored), ties keep the incumbent.
TIER1_TABLE = [
    (RouteClass.PEER, 2, RouteClass.CUSTOMER, 3, True),
    (RouteClass.PROVIDER, 1, RouteClass.CUSTOMER, 2, True),
    (RouteClass.CUSTOMER, 3, RouteClass.PEER, 2, False),
    (RouteClass.CUSTOMER, 2, RouteClass.PEER, 2, False),
    (RouteClass.PEER, 2, RouteClass.PEER, 2, False),
]


class TestPreferenceTable:
    @pytest.mark.parametrize(
        "new_class,new_length,old_class,old_length,expected", GAO_REXFORD_TABLE
    )
    def test_gao_rexford_order(
        self, new_class, new_length, old_class, old_length, expected
    ):
        assert (
            prefers(False, new_class, new_length, old_class, old_length) is expected
        )

    @pytest.mark.parametrize(
        "new_class,new_length,old_class,old_length,expected", TIER1_TABLE
    )
    def test_tier1_order(self, new_class, new_length, old_class, old_length, expected):
        assert (
            prefers(True, new_class, new_length, old_class, old_length) is expected
        )

    @pytest.mark.parametrize("backend", ["reference", "array"])
    def test_equal_routes_resolve_to_lowest_asn_neighbor(self, backend):
        """The last tie-break, end to end: when two candidates arrive with
        the same class and length, the winner is the first in adjacency
        order — and adjacency is sorted, so the lowest-ASN neighbor wins.
        Pinned on both backends (the array kernel's within-bucket
        first-occurrence selection must reproduce it exactly).

        AS4 buys transit from AS2 and AS3, both customers of the origin
        AS1 — two PROVIDER routes of length 2 reach AS4 in one bucket.
        """
        graph = ASGraph()
        for asn in (1, 2, 3, 4):
            graph.add_as(asn, tier1=(asn == 1))
        graph.add_relationship(1, 2, Relationship.CUSTOMER)
        graph.add_relationship(1, 3, Relationship.CUSTOMER)
        graph.add_relationship(2, 4, Relationship.CUSTOMER)
        graph.add_relationship(3, 4, Relationship.CUSTOMER)
        view = RoutingView.from_graph(graph)
        state = RoutingEngine(view, backend=backend).converge(view.node_of(1))
        node4 = view.node_of(4)
        assert state.length[node4] == 2
        assert state.parent[node4] == view.node_of(2)  # AS2 < AS3


class TestExportRule:
    def test_origin_and_customer_routes_export_widely(self):
        assert exports_to_peers_and_providers(RouteClass.ORIGIN)
        assert exports_to_peers_and_providers(RouteClass.CUSTOMER)

    def test_peer_and_provider_routes_export_to_customers_only(self):
        assert not exports_to_peers_and_providers(RouteClass.PEER)
        assert not exports_to_peers_and_providers(RouteClass.PROVIDER)


class TestPolicyConfig:
    def test_defaults_match_paper(self):
        config = PolicyConfig()
        assert config.tier1_shortest_path
        assert not config.first_hop_stub_filter
        assert config.max_generations >= 10
