"""Unit tests for MOAS classification, anycast routing and probe scaling."""

import pytest

from repro.attacks.lab import HijackLab
from repro.bgp.engine import RoutingEngine
from repro.core.probe_scaling import probe_scaling_study
from repro.detection.moas import MoasVerdict, anycast_state, classify_moas
from repro.prefixes.prefix import Prefix
from repro.registry.roa import RoaTable, RouteOriginAuthorization


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestClassifyMoas:
    @pytest.fixture
    def authority(self) -> RoaTable:
        return RoaTable([
            RouteOriginAuthorization(p("10.0.0.0/16"), 65001),
            RouteOriginAuthorization(p("10.0.0.0/16"), 65002),
        ])

    def test_authorized_moas_is_anycast(self, authority):
        report = classify_moas(authority, p("10.0.0.0/16"), [65001, 65002])
        assert report.verdict is MoasVerdict.LEGITIMATE_ANYCAST
        assert not report.alarm

    def test_unauthorized_origin_is_hijack(self, authority):
        report = classify_moas(authority, p("10.0.0.0/16"), [65001, 64999])
        assert report.verdict is MoasVerdict.HIJACK
        assert report.invalid_origins == (64999,)
        assert report.alarm

    def test_unpublished_space_unverifiable(self, authority):
        report = classify_moas(authority, p("99.0.0.0/16"), [65001, 65002])
        assert report.verdict is MoasVerdict.UNVERIFIABLE
        assert report.alarm  # noisy alarm — the cost of not publishing

    def test_no_authority_unverifiable(self):
        report = classify_moas(None, p("10.0.0.0/16"), [65001, 65002])
        assert report.verdict is MoasVerdict.UNVERIFIABLE

    def test_single_origin_rejected(self, authority):
        with pytest.raises(ValueError):
            classify_moas(authority, p("10.0.0.0/16"), [65001])

    def test_origins_deduplicated_and_sorted(self, authority):
        report = classify_moas(authority, p("10.0.0.0/16"), [65002, 65001, 65002])
        assert report.origins == (65001, 65002)


class TestAnycastState:
    def test_catchments_partition_topology(self, mini_view):
        engine = RoutingEngine(mini_view)
        a = mini_view.node_of(50)
        b = mini_view.node_of(60)
        state = anycast_state(engine, [a, b])
        catchment_a = state.holders_of(a)
        catchment_b = state.holders_of(b)
        assert catchment_a & catchment_b == frozenset()
        assert len(catchment_a) + len(catchment_b) == len(mini_view) - 2

    def test_each_side_keeps_its_vicinity(self, mini_view):
        engine = RoutingEngine(mini_view)
        a = mini_view.node_of(50)
        b = mini_view.node_of(60)
        state = anycast_state(engine, [a, b])
        # 30 is 50's provider: stays with 50. 40 is 60's provider.
        assert mini_view.node_of(30) in state.holders_of(a)
        assert mini_view.node_of(40) in state.holders_of(b)

    def test_needs_two_origins(self, mini_view):
        engine = RoutingEngine(mini_view)
        with pytest.raises(ValueError):
            anycast_state(engine, [mini_view.node_of(50)])


class TestProbeScaling:
    @pytest.fixture(scope="class")
    def curves(self, medium_lab: HijackLab):
        workload = medium_lab.random_attacks(160, seed=8)
        return probe_scaling_study(
            medium_lab.graph, workload, counts=(4, 16, 48), seed=8
        )

    def test_three_policies_measured(self, curves):
        assert set(curves) == {"top-degree", "random", "greedy"}
        for curve in curves.values():
            assert len(curve.points) == 3

    def test_miss_rate_decreases_with_probes(self, curves):
        for curve in curves.values():
            first = curve.points[0][1]
            last = curve.points[-1][1]
            assert last <= first + 0.02

    def test_topdegree_no_worse_than_random_overall(self, curves):
        # Compare whole curves (sum of miss rates): the paper's advice is
        # about the regime where probes are scarce; at saturation both
        # policies approach zero and can tie either way.
        top_total = sum(rate for _count, rate in curves["top-degree"].points)
        random_total = sum(rate for _count, rate in curves["random"].points)
        assert top_total <= random_total + 0.02

    def test_probes_needed(self, curves):
        curve = curves["top-degree"]
        needed = curve.probes_needed(1.0)
        assert needed == curve.points[0][0]
        assert curve.probes_needed(-0.1) is None or isinstance(
            curve.probes_needed(-0.1), int
        )

    def test_small_workload_rejected(self, medium_lab):
        with pytest.raises(ValueError):
            probe_scaling_study(medium_lab.graph, [], counts=(4,))
