"""Unit tests for topology classification: tier-1, depth, reach, cones."""

from repro.topology.asgraph import ASGraph
from repro.topology.classify import (
    customer_cone,
    depth_to_tier1,
    effective_depth,
    find_tier1,
    find_tier2,
    reach,
    stub_asns,
    summarize,
    transit_asns,
)
from repro.topology.relationships import Relationship


class TestTier1:
    def test_marked_tier1_wins(self, mini_graph):
        assert find_tier1(mini_graph) == frozenset({1, 2})

    def test_inference_without_marks(self):
        graph = ASGraph()
        for asn in (1, 2, 3, 10, 11):
            graph.add_as(asn)
        for a, b in ((1, 2), (1, 3), (2, 3)):
            graph.add_relationship(a, b, Relationship.PEER)
        graph.add_relationship(1, 10, Relationship.CUSTOMER)
        graph.add_relationship(2, 11, Relationship.CUSTOMER)
        assert find_tier1(graph) == frozenset({1, 2, 3})

    def test_inference_excludes_non_clique_members(self):
        graph = ASGraph()
        for asn in (1, 2, 3):
            graph.add_as(asn)
        graph.add_relationship(1, 2, Relationship.PEER)
        # AS3 has no providers but doesn't peer with the clique.
        tier1 = find_tier1(graph)
        assert 3 not in tier1

    def test_empty_graph(self):
        assert find_tier1(ASGraph()) == frozenset()


class TestDepth:
    def test_depth_to_tier1(self, mini_graph):
        depth = depth_to_tier1(mini_graph)
        assert depth[1] == 0 and depth[2] == 0
        assert depth[10] == 1 and depth[20] == 1
        assert depth[30] == 2 and depth[50] == 3
        assert depth[70] == 1

    def test_effective_depth_anchors_on_tier2(self, mini_graph):
        # 10 and 20 qualify as tier-2 (direct tier-1 customers with degree
        # >= threshold), so depths shift down by one below them.
        tier2 = find_tier2(mini_graph, min_degree=3)
        assert tier2 == frozenset({10, 20})
        depth = effective_depth(mini_graph, tier2=tier2)
        assert depth[10] == 0
        assert depth[30] == 1
        assert depth[50] == 2
        assert depth[80] == 1

    def test_find_tier2_requires_customers(self, mini_graph):
        # AS70 is a direct tier-1 customer but has no customers itself.
        assert 70 not in find_tier2(mini_graph, min_degree=1)


class TestConesAndReach:
    def test_customer_cone(self, mini_graph):
        assert customer_cone(mini_graph, 10) == frozenset({10, 30, 50, 80})
        assert customer_cone(mini_graph, 50) == frozenset({50})

    def test_reach_excludes_self(self, mini_graph):
        assert reach(mini_graph, 10) == 3
        assert reach(mini_graph, 50) == 0

    def test_reach_ignores_peers(self, mini_graph):
        # 10 peers with 20 but 20's cone is not reachable without peers.
        assert 40 not in customer_cone(mini_graph, 10)


class TestTransitSplit:
    def test_transit_asns(self, mini_graph):
        assert transit_asns(mini_graph) == frozenset({1, 2, 10, 20, 30, 40})

    def test_stub_asns(self, mini_graph):
        assert stub_asns(mini_graph) == frozenset({50, 60, 70, 80})

    def test_partition_is_total(self, mini_graph):
        assert transit_asns(mini_graph) | stub_asns(mini_graph) == frozenset(
            mini_graph.asns()
        )


class TestSummarize:
    def test_summary_fields(self, mini_graph):
        stats = summarize(mini_graph)
        assert stats.as_count == 10
        assert stats.link_count == mini_graph.edge_count()
        assert stats.tier1 == frozenset({1, 2})
        assert stats.transit_count == 6
        assert stats.stub_count == 4
        assert stats.transit_fraction == 0.6
        assert sum(stats.depth_histogram.values()) == stats.as_count
