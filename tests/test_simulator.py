"""Unit tests for the message-passing simulator on hand-computed outcomes.

The mini topology (see ``conftest``)::

    tier-1:     1 ===== 2
               /|        \\
    tier-2:   10 ======= 20
              | \\       | \\
    mid:      30  \\     40  \\
              |    80___/    |
    stub:     50 70(cust of 1) 60
"""

import pytest

from repro.bgp.policy import PolicyConfig
from repro.bgp.simulator import BGPSimulator, ConvergenceError
from repro.prefixes.prefix import Prefix
from repro.topology.relationships import RouteClass

P = Prefix.parse("10.0.0.0/8")


@pytest.fixture
def sim(mini_view):
    return BGPSimulator(mini_view)


def route(sim, mini_view, asn):
    return sim.route_to(P, mini_view.node_of(asn))


class TestLegitimatePropagation:
    def test_full_reachability(self, sim, mini_view):
        report = sim.announce(mini_view.node_of(50), P)
        assert len(report.adopters) == 9  # everyone except the origin

    def test_route_classes_and_lengths(self, sim, mini_view):
        sim.announce(mini_view.node_of(50), P)
        expect = {
            50: (RouteClass.ORIGIN, 0),
            30: (RouteClass.CUSTOMER, 1),
            10: (RouteClass.CUSTOMER, 2),
            1: (RouteClass.CUSTOMER, 3),
            20: (RouteClass.PEER, 3),      # via peer 10, not provider 2
            2: (RouteClass.PEER, 4),       # tier-1: via peer 1
            80: (RouteClass.PROVIDER, 3),  # the shorter of its two providers
            40: (RouteClass.PROVIDER, 4),
            70: (RouteClass.PROVIDER, 4),
            60: (RouteClass.PROVIDER, 5),
        }
        for asn, (route_class, length) in expect.items():
            installed = route(sim, mini_view, asn)
            assert installed is not None, asn
            assert installed.route_class is route_class, asn
            assert installed.length == length, asn

    def test_paths_are_valley_free(self, sim, mini_view):
        sim.announce(mini_view.node_of(50), P)
        # 40's path must go 20 -> 10 -> 30 -> 50 (peer then down), never
        # through provider 2 then down again (that would be a valley).
        installed = route(sim, mini_view, 40)
        assert [mini_view.asn_of(n) for n in installed.path] == [20, 10, 30, 50]

    def test_converges_quickly(self, sim, mini_view):
        report = sim.announce(mini_view.node_of(50), P)
        assert report.generations <= 7

    def test_max_generations_enforced(self, mini_view):
        sim = BGPSimulator(mini_view, PolicyConfig(max_generations=1))
        with pytest.raises(ConvergenceError):
            sim.announce(mini_view.node_of(50), P)


class TestHijack:
    def test_attack_from_deep_stub(self, sim, mini_view):
        sim.announce(mini_view.node_of(50), P)
        report = sim.announce(mini_view.node_of(60), P)
        polluted = {mini_view.asn_of(node) for node in report.adopters}
        # Hand-computed: 40 (customer beats provider), 20 (customer beats
        # peer), 2 (tier-1 shortest: 3 < 4). 10 keeps its customer route,
        # 80 ties on (provider, 3) and keeps the incumbent.
        assert polluted == {40, 20, 2}

    def test_attack_from_tier1_stub(self, sim, mini_view):
        sim.announce(mini_view.node_of(50), P)
        report = sim.announce(mini_view.node_of(70), P)
        polluted = {mini_view.asn_of(node) for node in report.adopters}
        assert polluted == {1, 2}

    def test_tier1_tie_keeps_legitimate_route(self, sim, mini_view):
        # AS2's legit route is peer length 4; an attack giving it a
        # customer route of length 4 must NOT displace it (the paper's
        # AS6450 blind-spot mechanics). Attacker 60: AS2 gets customer
        # length 3 < 4 so it IS displaced; attacker 50->60 scenario covers
        # the tie in test_attack_from_deep_stub via AS80 (provider tie).
        sim.announce(mini_view.node_of(50), P)
        sim.announce(mini_view.node_of(60), P)
        installed = route(sim, mini_view, 80)
        assert installed.origin == mini_view.node_of(50)

    def test_events_recorded_with_colors(self, sim, mini_view):
        sim.announce(mini_view.node_of(50), P)
        report = sim.announce(mini_view.node_of(60), P, record_events=True)
        assert report.events, "expected recorded events"
        accepted = [event for event in report.events if event.accepted]
        rejected = [event for event in report.events if not event.accepted]
        assert accepted and rejected
        assert all(event.origin == mini_view.node_of(60) for event in report.events)
        # Generation numbering starts at 1 and is contiguous.
        generations = {event.generation for event in report.events}
        assert min(generations) == 1
        assert report.events_in_generation(1)

    def test_validator_blocks_and_stops_propagation(self, mini_view):
        blocked_node = mini_view.node_of(20)
        attacker = mini_view.node_of(60)

        def validator(node, candidate):
            return node == blocked_node and candidate.origin == attacker

        sim = BGPSimulator(mini_view, validator=validator)
        sim.announce(mini_view.node_of(50), P)
        report = sim.announce(attacker, P)
        polluted = {mini_view.asn_of(node) for node in report.adopters}
        # Without AS20 accepting, the bogus route never reaches AS2.
        assert polluted == {40}

    def test_tier1_policy_ablation_changes_outcome(self, mini_view):
        sim = BGPSimulator(mini_view, PolicyConfig(tier1_shortest_path=False))
        sim.announce(mini_view.node_of(50), P)
        report = sim.announce(mini_view.node_of(60), P)
        polluted = {mini_view.asn_of(node) for node in report.adopters}
        # AS2 now ranks its customer route (via 20) above the shorter
        # peer route, so the legit customer route via 20... is replaced
        # when 20 is polluted; the bogus route arrives as a customer route
        # of length 3 which now beats the peer incumbent by class.
        assert 2 in polluted

    def test_adopters_of_excludes_origin(self, sim, mini_view):
        origin = mini_view.node_of(50)
        sim.announce(origin, P)
        assert origin not in sim.adopters_of(P, origin)


class TestMultiplePrefixes:
    def test_independent_tables(self, sim, mini_view):
        other = Prefix.parse("11.0.0.0/8")
        sim.announce(mini_view.node_of(50), P)
        sim.announce(mini_view.node_of(60), other)
        assert route(sim, mini_view, 40).origin == mini_view.node_of(50)
        installed_other = sim.route_to(other, mini_view.node_of(40))
        assert installed_other.origin == mini_view.node_of(60)
