"""Unit tests for the per-prefix incremental convergence ledger, plus the
stream-side half of the attack-taxonomy conformance matrix: every grid
cell compiled to events must raise the same verdict from the online
monitor that the batch detector reaches on the finished outcome."""

import pytest

from repro.attacks.lab import HijackLab
from repro.bgp.engine import RoutingEngine
from repro.detection.detector import HijackDetector
from repro.detection.probes import top_degree_probes
from repro.detection.taxonomy import grid_cells
from repro.obs.metrics import Metrics
from repro.registry.neighbors import NeighborRegistry
from repro.registry.publication import PublicationState
from repro.stream.events import Announce, compile_scenario
from repro.stream.incremental import AnnounceEntry, PrefixLedger, full_converge
from repro.stream.monitor import OnlineMonitor
from repro.stream.replay import StreamReplayer


@pytest.fixture
def engine(mini_view) -> RoutingEngine:
    return RoutingEngine(mini_view)


def node(view, asn: int) -> int:
    return view.node_of(asn)


class TestLedgerBasics:
    def test_empty_ledger_has_no_state(self, engine):
        ledger = PrefixLedger(engine)
        assert len(ledger) == 0
        assert ledger.state is None
        assert ledger.checksum() is None
        assert ledger.entries == ()
        assert full_converge(engine, ledger.entries) is None

    def test_single_announce_equals_cold_converge(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        origin = node(mini_view, 50)
        assert ledger.announce(origin, origin_asn=50)
        assert ledger.checksum() == engine.converge(origin).checksum()
        assert ledger.origin_asns() == {origin: 50}

    def test_duplicate_announce_is_noop(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        origin = node(mini_view, 50)
        assert ledger.announce(origin)
        before = ledger.checksum()
        assert not ledger.announce(origin)
        assert len(ledger) == 1 and ledger.checksum() == before

    def test_withdraw_of_inactive_origin_is_noop(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        assert not ledger.withdraw(node(mini_view, 50))
        assert ledger.announce(node(mini_view, 50))
        assert not ledger.withdraw(node(mini_view, 60))

    def test_captured_parameters_reach_the_pass(self, engine, mini_view):
        blocked = frozenset({node(mini_view, 40)})
        ledger = PrefixLedger(engine)
        assert ledger.announce(node(mini_view, 60), blocked=blocked,
                               first_hop_filtered=True)
        entry = ledger.entries[0]
        assert entry.blocked == blocked and entry.first_hop_filtered
        reference = engine.converge(
            node(mini_view, 60), blocked=blocked, filter_first_hop_providers=True
        )
        assert ledger.checksum() == reference.checksum()


class TestWithdrawRewind:
    def test_newest_withdraw_restores_previous_state(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        assert ledger.announce(node(mini_view, 50))
        before = ledger.checksum()
        assert ledger.announce(node(mini_view, 60))
        assert ledger.withdraw(node(mini_view, 60))
        assert ledger.checksum() == before

    def test_interior_withdraw_replays_suffix(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        for asn in (50, 60, 70):
            assert ledger.announce(node(mini_view, asn))
        assert ledger.withdraw(node(mini_view, 50))
        assert ledger.active_origins() == (
            node(mini_view, 60), node(mini_view, 70)
        )
        assert ledger.checksum() == full_converge(
            engine,
            (AnnounceEntry(node(mini_view, 60), 60),
             AnnounceEntry(node(mini_view, 70), 70)),
        ).checksum()

    def test_withdraw_to_empty(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        assert ledger.announce(node(mini_view, 50))
        assert ledger.withdraw(node(mini_view, 50))
        assert ledger.state is None and ledger.checksum() is None


class TestValidateMode:
    def test_validated_ledger_records_checksums(self, mini_view):
        ledger = PrefixLedger(RoutingEngine(mini_view, validate=True))
        assert ledger.announce(node(mini_view, 50))
        assert ledger.announce(node(mini_view, 60))
        assert all(slot.checksum for slot in ledger._slots)
        assert ledger.withdraw(node(mini_view, 60))  # tripwire passes

    def test_rewind_tripwire_catches_external_corruption(self, mini_view):
        ledger = PrefixLedger(RoutingEngine(mini_view, validate=True))
        origin_a = node(mini_view, 50)
        assert ledger.announce(origin_a)
        assert ledger.announce(node(mini_view, 60))
        # Corrupt a cell the second delta never touched: the first
        # origin's own entry (an origin route is never displaced).
        ledger._state.length[origin_a] += 7
        with pytest.raises(RuntimeError, match="journal corruption"):
            ledger.withdraw(node(mini_view, 60))


class TestClaimedPaths:
    """The ledger carries and pads claimed AS paths like the batch lab."""

    def test_honest_announce_claims_itself(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        origin = node(mini_view, 50)
        assert ledger.announce(origin, origin_asn=50)
        assert ledger.claimed_paths() == {origin: (50,)}
        assert ledger.entries[0].origin_length == 0

    def test_forged_path_sets_claimed_padding(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        origin = node(mini_view, 60)
        path = (60, 64512, 50)
        assert ledger.announce(origin, origin_asn=60, path=path)
        entry = ledger.entries[0]
        assert entry.claimed_path == path
        assert entry.origin_length == 2
        assert ledger.claimed_paths() == {origin: path}
        # The padding reaches the pass: identical to a cold converge at
        # the claimed length.
        reference = engine.converge(origin, origin_length=2)
        assert ledger.checksum() == reference.checksum()

    def test_padded_route_loses_where_honest_wins(self, engine, mini_view):
        """A deep forged claim competes at its claimed length — receivers
        that a type-0 squat would capture keep the legitimate route."""
        honest = PrefixLedger(engine)
        padded = PrefixLedger(engine)
        for ledger, path in ((honest, None), (padded, (60, 64512, 64513, 50))):
            assert ledger.announce(node(mini_view, 50), origin_asn=50)
            assert ledger.announce(node(mini_view, 60), origin_asn=60, path=path)
        attacker = node(mini_view, 60)
        assert honest.state.holders_of(attacker) > padded.state.holders_of(attacker)

    def test_rewind_restores_paths(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        legit = node(mini_view, 50)
        assert ledger.announce(legit, origin_asn=50)
        assert ledger.announce(node(mini_view, 60), origin_asn=60,
                               path=(60, 50))
        assert ledger.withdraw(node(mini_view, 60))
        assert ledger.claimed_paths() == {legit: (50,)}


class TestStreamTaxonomy:
    """Stream half of the conformance matrix (``tests/test_taxonomy.py``
    holds the batch half): compile each grid cell, replay it, and demand
    the monitor's live verdict equal the batch detector's postmortem."""

    TARGET, ATTACKER = 50, 60

    @pytest.fixture
    def lab(self, mini_graph) -> HijackLab:
        return HijackLab(mini_graph, seed=0)

    def full_detector(self, lab) -> HijackDetector:
        return HijackDetector(
            probes=top_degree_probes(lab.graph, count=4),
            authority=PublicationState.full(lab.plan).table(),
            neighbors=NeighborRegistry.from_graph(lab.graph),
            relationships=lab.graph,
        )

    def replayed(self, lab, scenario):
        replayer = StreamReplayer(lab)
        replayer.monitor = OnlineMonitor(lab.view, self.full_detector(lab))
        report = replayer.run(compile_scenario(scenario))
        return replayer, report

    @pytest.mark.parametrize(
        "kind,path_kind", grid_cells(),
        ids=[f"{k.value}-{p.value}" for k, p in grid_cells()],
    )
    def test_stream_verdict_matches_batch(self, lab, kind, path_kind):
        scenario = lab.build_scenario(
            self.TARGET, self.ATTACKER, kind=kind, path_kind=path_kind,
            forged_depth=2,
        )
        batch = self.full_detector(lab).observe(lab.run_scenario(scenario))
        assert batch.detected  # the full ladder classifies every cell
        _replayer, report = self.replayed(lab, scenario)
        alarm = report.monitor.first_alarm
        assert alarm is not None, f"{kind.value}/{path_kind.value} never alarmed"
        assert alarm.verdict == batch.verdict.value
        assert alarm.prefix == scenario.prefix
        # Per-event replay judges the announcement the instant it lands.
        assert (alarm.latency_time, alarm.latency_events) == (0.0, 0)

    def test_replayed_claims_reach_the_monitor(self, lab):
        """The resolved type-U / leak tails are the batch lab's, hop for
        hop — the monitor indicts the same claimed paths."""
        expected = {
            "unmodified": (40, 20, 10, 30, 50),
            "leak": (60, 40, 20, 10, 30, 50),
        }
        from repro.attacks.scenario import HijackKind, PathKind

        for kind, marker in (
            (HijackKind.ORIGIN, "unmodified"),
            (HijackKind.ROUTE_LEAK, "leak"),
        ):
            scenario = lab.build_scenario(
                self.TARGET, self.ATTACKER, kind=kind, path_kind=PathKind.TYPE_U
            )
            replayer, report = self.replayed(lab, scenario)
            ledger = replayer.ledger(scenario.prefix)
            attacker_node = lab.view.node_of(self.ATTACKER)
            assert ledger.claimed_paths()[attacker_node] == expected[marker]
            assert report.monitor.first_alarm.culprit_paths == (
                expected[marker],
            )

    def test_replay_with_no_route_is_a_noop(self, lab):
        """A replay marker with nothing to replay fizzles: counted as a
        noop, no ledger entry, no alarm — the batch fizzle, streamed."""
        prefix = lab.target_prefix(self.TARGET)
        replayer = StreamReplayer(lab)
        replayer.monitor = OnlineMonitor(lab.view, self.full_detector(lab))
        report = replayer.run([
            Announce(at=0.0, prefix=prefix, origin_asn=self.ATTACKER,
                     replay="unmodified"),
        ])
        assert report.events_noop == 1
        assert report.events_applied == 1  # applied, resolved to nothing
        assert replayer.ledger(prefix) is None
        assert report.monitor.alarms == ()

    def test_batched_taxonomy_alarm_charges_queue_time(self, lab):
        """Latency accounting holds for path-forged cells too: a type-1
        claim queued behind a batch window pays the window in latency."""
        from repro.attacks.scenario import HijackKind, PathKind

        scenario = lab.build_scenario(
            self.TARGET, self.ATTACKER,
            kind=HijackKind.ORIGIN, path_kind=PathKind.TYPE_1,
        )
        replayer = StreamReplayer(lab, batch_window=2.0)
        replayer.monitor = OnlineMonitor(lab.view, self.full_detector(lab))
        for event in compile_scenario(scenario):
            replayer.submit(event)
        from repro.stream.events import Withdraw

        # Push the clock past the window so the batch flushes at its
        # virtual deadline (t = 0 + 2), one second after the forged
        # announce at t=1.
        replayer.submit(
            Withdraw(at=10.0, prefix=scenario.prefix, origin_asn=self.ATTACKER)
        )
        report = replayer.finish()
        alarm = report.monitor.first_alarm
        assert alarm is not None
        assert alarm.verdict == "forged-path"
        assert alarm.at == 2.0
        assert alarm.latency_time == 1.0


class TestMetrics:
    def test_ledger_counters(self, mini_view):
        metrics = Metrics()
        ledger = PrefixLedger(RoutingEngine(mini_view), metrics=metrics)
        for asn in (50, 60, 70):
            assert ledger.announce(node(mini_view, asn))
        assert ledger.withdraw(node(mini_view, 50))  # rewinds 3, replays 2
        counters = metrics.snapshot()["counters"]
        assert counters["stream.ledger.convergences"] == 5
        assert counters["stream.ledger.reverts"] == 3
        assert counters["stream.ledger.replays"] == 2
        assert counters["stream.ledger.cells_installed"] > 0
