"""Unit tests for the per-prefix incremental convergence ledger."""

import pytest

from repro.bgp.engine import RoutingEngine
from repro.obs.metrics import Metrics
from repro.stream.incremental import AnnounceEntry, PrefixLedger, full_converge


@pytest.fixture
def engine(mini_view) -> RoutingEngine:
    return RoutingEngine(mini_view)


def node(view, asn: int) -> int:
    return view.node_of(asn)


class TestLedgerBasics:
    def test_empty_ledger_has_no_state(self, engine):
        ledger = PrefixLedger(engine)
        assert len(ledger) == 0
        assert ledger.state is None
        assert ledger.checksum() is None
        assert ledger.entries == ()
        assert full_converge(engine, ledger.entries) is None

    def test_single_announce_equals_cold_converge(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        origin = node(mini_view, 50)
        assert ledger.announce(origin, origin_asn=50)
        assert ledger.checksum() == engine.converge(origin).checksum()
        assert ledger.origin_asns() == {origin: 50}

    def test_duplicate_announce_is_noop(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        origin = node(mini_view, 50)
        assert ledger.announce(origin)
        before = ledger.checksum()
        assert not ledger.announce(origin)
        assert len(ledger) == 1 and ledger.checksum() == before

    def test_withdraw_of_inactive_origin_is_noop(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        assert not ledger.withdraw(node(mini_view, 50))
        assert ledger.announce(node(mini_view, 50))
        assert not ledger.withdraw(node(mini_view, 60))

    def test_captured_parameters_reach_the_pass(self, engine, mini_view):
        blocked = frozenset({node(mini_view, 40)})
        ledger = PrefixLedger(engine)
        assert ledger.announce(node(mini_view, 60), blocked=blocked,
                               first_hop_filtered=True)
        entry = ledger.entries[0]
        assert entry.blocked == blocked and entry.first_hop_filtered
        reference = engine.converge(
            node(mini_view, 60), blocked=blocked, filter_first_hop_providers=True
        )
        assert ledger.checksum() == reference.checksum()


class TestWithdrawRewind:
    def test_newest_withdraw_restores_previous_state(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        assert ledger.announce(node(mini_view, 50))
        before = ledger.checksum()
        assert ledger.announce(node(mini_view, 60))
        assert ledger.withdraw(node(mini_view, 60))
        assert ledger.checksum() == before

    def test_interior_withdraw_replays_suffix(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        for asn in (50, 60, 70):
            assert ledger.announce(node(mini_view, asn))
        assert ledger.withdraw(node(mini_view, 50))
        assert ledger.active_origins() == (
            node(mini_view, 60), node(mini_view, 70)
        )
        assert ledger.checksum() == full_converge(
            engine,
            (AnnounceEntry(node(mini_view, 60), 60),
             AnnounceEntry(node(mini_view, 70), 70)),
        ).checksum()

    def test_withdraw_to_empty(self, engine, mini_view):
        ledger = PrefixLedger(engine)
        assert ledger.announce(node(mini_view, 50))
        assert ledger.withdraw(node(mini_view, 50))
        assert ledger.state is None and ledger.checksum() is None


class TestValidateMode:
    def test_validated_ledger_records_checksums(self, mini_view):
        ledger = PrefixLedger(RoutingEngine(mini_view, validate=True))
        assert ledger.announce(node(mini_view, 50))
        assert ledger.announce(node(mini_view, 60))
        assert all(slot.checksum for slot in ledger._slots)
        assert ledger.withdraw(node(mini_view, 60))  # tripwire passes

    def test_rewind_tripwire_catches_external_corruption(self, mini_view):
        ledger = PrefixLedger(RoutingEngine(mini_view, validate=True))
        origin_a = node(mini_view, 50)
        assert ledger.announce(origin_a)
        assert ledger.announce(node(mini_view, 60))
        # Corrupt a cell the second delta never touched: the first
        # origin's own entry (an origin route is never displaced).
        ledger._state.length[origin_a] += 7
        with pytest.raises(RuntimeError, match="journal corruption"):
            ledger.withdraw(node(mini_view, 60))


class TestMetrics:
    def test_ledger_counters(self, mini_view):
        metrics = Metrics()
        ledger = PrefixLedger(RoutingEngine(mini_view), metrics=metrics)
        for asn in (50, 60, 70):
            assert ledger.announce(node(mini_view, asn))
        assert ledger.withdraw(node(mini_view, 50))  # rewinds 3, replays 2
        counters = metrics.snapshot()["counters"]
        assert counters["stream.ledger.convergences"] == 5
        assert counters["stream.ledger.reverts"] == 3
        assert counters["stream.ledger.replays"] == 2
        assert counters["stream.ledger.cells_installed"] > 0
