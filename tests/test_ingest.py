"""The ingest layer: golden-trace pins, malformed battery, feed tailing.

Three fronts, per ``docs/ingestion.md``:

* the committed golden trace (``tests/fixtures/``) must reproduce its
  pinned monitor report **byte-for-byte** through the real CLI and
  value-identically through both routing backends — and regenerating
  the fixtures must produce the committed bytes (no drift);
* malformed input is table-driven: lenient mode counts and continues
  (``ingest.malformed`` and friends), strict mode raises with
  ``path:line`` coordinates;
* the daemon's tailed-feed path survives mid-follow truncation and
  rotation (the read position is re-anchored, counted via
  ``service.feed.reopened``) and holds back partial lines.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.attacks.lab import HijackLab
from repro.detection.probes import custom_probes, tier1_probes
from repro.ingest import (
    TraceFormatError,
    TracePipeline,
    TraceReader,
    TraceRecord,
    compile_rib,
    compile_updates,
    read_trace,
    run_ingest,
    seed_registry,
    write_trace,
)
from repro.obs.metrics import Metrics
from repro.prefixes.prefix import Prefix
from repro.service.api import ServiceDaemon
from repro.service.daemon import MonitorService
from repro.service.tenants import TenantRegistry
from repro.stream.events import parse_event_line
from repro.topology.caida import load_caida
from tests.conftest import build_mini_graph
from tests.fixtures import make_golden_traces as golden

FIXTURES = golden.FIXTURES_DIR
TOPOLOGY = FIXTURES / golden.GOLDEN_TOPOLOGY
RIB = FIXTURES / golden.GOLDEN_RIB
UPDATES = FIXTURES / golden.GOLDEN_UPDATES
REPORT = FIXTURES / golden.GOLDEN_REPORT

GOOD_JSON = '{"path":[50],"peer":1,"prefix":"2.40.0.0/13","ts":1.0,"type":"announce"}'
GOOD_JSON_LATER = (
    '{"path":[60],"peer":1,"prefix":"2.48.0.0/13","ts":2.0,"type":"announce"}'
)


# -- golden trace ----------------------------------------------------------


class TestGoldenTrace:
    def test_fixture_regeneration_has_no_drift(self, tmp_path):
        """The committed fixtures are exactly what the generator writes."""
        regenerated = golden.write_fixtures(tmp_path / "fixtures")
        for name, path in regenerated.items():
            assert path.read_bytes() == (FIXTURES / name).read_bytes(), name

    def test_cli_reproduces_pinned_report_byte_for_byte(self, tmp_path):
        from repro.cli import main

        report = tmp_path / "report.json"
        exit_code = main([
            "ingest",
            "--topology", str(TOPOLOGY),
            "--rib", str(RIB),
            "--updates", str(UPDATES),
            "--strict",
            "--seed-roas",
            "--report", str(report),
        ])
        assert exit_code == 0
        assert report.read_bytes() == REPORT.read_bytes()

    @pytest.mark.parametrize("backend", ["reference", "array"])
    def test_pipeline_matches_pinned_report_on_both_backends(self, backend):
        graph = load_caida(TOPOLOGY)
        lab = HijackLab(graph, seed=2014, backend=backend)
        pipeline = TracePipeline(
            rib_path=RIB, updates_path=UPDATES, strict=True, seed_roas=True
        )
        result = run_ingest(lab, pipeline, probes=tier1_probes(graph))
        assert result.as_dict() == json.loads(REPORT.read_text(encoding="utf-8"))

    def test_pinned_report_catches_all_three_attacks(self):
        """Semantic floor under the byte pin: the hijacks were caught."""
        payload = json.loads(REPORT.read_text(encoding="utf-8"))
        monitor = payload["replay"]["monitor"]
        alarms = monitor["alarms"]
        assert [alarm["verdict"] for alarm in alarms] == ["hijack", "hijack"]
        assert all(alarm["invalid_origins"] == [60] for alarm in alarms)
        assert payload["ingest"]["updates"]["malformed"] == 0

    def test_compile_only_emits_the_event_stream(self, tmp_path):
        from repro.cli import main

        compiled = tmp_path / "compiled.jsonl"
        exit_code = main([
            "ingest",
            "--topology", str(TOPOLOGY),
            "--rib", str(RIB),
            "--updates", str(UPDATES),
            "--seed-roas",
            "--compile-only", str(compiled),
        ])
        assert exit_code == 0
        events = [
            parse_event_line(line)
            for line in compiled.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        # 4 ROAs + 4 baseline announces + 6 update deltas
        assert len(events) == 14

    def test_baseline_classify_and_registry_seeding(self):
        baseline = compile_rib(TraceReader(RIB))
        prefix_50 = Prefix.parse("2.40.0.0/13")
        assert baseline.classify(prefix_50, 50) == "legit"
        assert baseline.classify(prefix_50, 60) == "hijack"
        assert baseline.classify(next(prefix_50.subnets()), 50) == "legit"
        assert baseline.classify(Prefix.parse("99.0.0.0/8"), 50) == "unknown_prefix"
        assert baseline.peers == {1, 2}

        registry = TenantRegistry()
        registrations = seed_registry(registry, baseline)
        assert {r.tenant for r in registrations} == {"as50", "as60", "as70", "as80"}


# -- record/trace I/O ------------------------------------------------------


def test_gzip_trace_roundtrip(tmp_path):
    records = [
        TraceRecord("announce", 1.0, 1, Prefix.parse("10.0.0.0/16"), (50,)),
        TraceRecord("withdraw", 2.0, 1, Prefix.parse("10.0.0.0/16"), (50,)),
    ]
    path = write_trace(tmp_path / "trace.jsonl.gz", records)
    assert read_trace(path) == records


def test_tsv_trace_roundtrip(tmp_path):
    records = [TraceRecord("rib", 0.5, 7018, Prefix.parse("10.0.0.0/8"), (7018, 50))]
    path = write_trace(tmp_path / "trace.tsv", records, encoding="tsv")
    assert read_trace(path) == records


# -- malformed battery -----------------------------------------------------

MALFORMED_LINES = [
    ("truncated-json", '{"path":[50],"peer":1,"prefix":"2.0.0.0/8","ts":1.0'),
    ("non-object-json", '["not","a","record"]'),
    ("unknown-type", '{"path":[50],"peer":1,"prefix":"2.0.0.0/8","ts":1.0,"type":"nope"}'),
    ("empty-path", '{"path":[],"peer":1,"prefix":"2.0.0.0/8","ts":1.0,"type":"rib"}'),
    ("asn-zero", '{"path":[0],"peer":1,"prefix":"2.0.0.0/8","ts":1.0,"type":"rib"}'),
    ("asn-overflow",
     '{"path":[4294967296],"peer":1,"prefix":"2.0.0.0/8","ts":1.0,"type":"rib"}'),
    ("boolean-peer", '{"path":[50],"peer":true,"prefix":"2.0.0.0/8","ts":1.0,"type":"rib"}'),
    ("bad-prefix", '{"path":[50],"peer":1,"prefix":"300.0.0.0/8","ts":1.0,"type":"rib"}'),
    ("bad-mask", '{"path":[50],"peer":1,"prefix":"2.0.0.0/40","ts":1.0,"type":"rib"}'),
    ("missing-ts", '{"path":[50],"peer":1,"prefix":"2.0.0.0/8","type":"rib"}'),
    ("nan-ts", '{"path":[50],"peer":1,"prefix":"2.0.0.0/8","ts":NaN,"type":"rib"}'),
    ("tsv-too-few-fields", "1.0\tannounce\t1\t2.0.0.0/8"),
    ("tsv-bad-timestamp", "soon\tannounce\t1\t2.0.0.0/8\t50"),
    ("tsv-bad-path-hop", "1.0\tannounce\t1\t2.0.0.0/8\t50 sixty"),
]


@pytest.mark.parametrize(
    "line", [line for _label, line in MALFORMED_LINES],
    ids=[label for label, _line in MALFORMED_LINES],
)
class TestMalformedLines:
    def test_lenient_counts_and_continues(self, tmp_path, line):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            f"{GOOD_JSON}\n{line}\n{GOOD_JSON_LATER}\n", encoding="utf-8"
        )
        metrics = Metrics()
        reader = TraceReader(trace, metrics=metrics)
        records = list(reader)
        assert [record.origin_asn for record in records] == [50, 60]
        assert reader.malformed == 1
        assert metrics.counters["ingest.malformed"] == 1
        assert metrics.counters["ingest.records"] == 2

    def test_strict_raises_with_line_coordinates(self, tmp_path, line):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            f"{GOOD_JSON}\n{line}\n{GOOD_JSON_LATER}\n", encoding="utf-8"
        )
        with pytest.raises(TraceFormatError) as caught:
            list(TraceReader(trace, strict=True))
        assert f"{trace}:2:" in str(caught.value)


class TestCompilerAnomalies:
    def _rib(self, peer, prefix, origin, at=0.0, line=0):
        return TraceRecord("rib", at, peer, Prefix.parse(prefix), (peer, origin),
                           line=line)

    def test_duplicate_rib_entries_lenient_keeps_first(self):
        metrics = Metrics()
        records = [
            self._rib(1, "2.0.0.0/8", 50, line=1),
            self._rib(1, "2.0.0.0/8", 60, line=2),  # duplicate (peer, prefix)
            self._rib(2, "2.0.0.0/8", 50, line=3),  # same prefix, other peer: fine
        ]
        baseline = compile_rib(records, metrics=metrics)
        assert baseline.entries == 2
        assert baseline.duplicates == 1
        assert baseline.classify(Prefix.parse("2.0.0.0/8"), 60) == "hijack"
        assert metrics.counters["ingest.duplicate_rib"] == 1

    def test_duplicate_rib_entries_strict_raises_with_line(self):
        records = [
            self._rib(1, "2.0.0.0/8", 50, line=1),
            self._rib(1, "2.0.0.0/8", 60, line=2),
        ]
        with pytest.raises(TraceFormatError, match=r"<rib>:2: duplicate RIB entry"):
            compile_rib(records, strict=True)

    def test_update_in_rib_dump_is_misplaced(self):
        metrics = Metrics()
        records = [
            self._rib(1, "2.0.0.0/8", 50),
            TraceRecord("announce", 1.0, 1, Prefix.parse("2.0.0.0/8"), (60,)),
        ]
        baseline = compile_rib(records, metrics=metrics)
        assert baseline.misplaced == 1
        assert metrics.counters["ingest.misplaced"] == 1

    def test_out_of_order_updates_lenient_still_yield(self):
        metrics = Metrics()
        records = [
            TraceRecord("announce", 5.0, 1, Prefix.parse("2.0.0.0/8"), (50,)),
            TraceRecord("announce", 3.0, 1, Prefix.parse("2.0.0.0/8"), (60,), line=2),
            TraceRecord("withdraw", 6.0, 1, Prefix.parse("2.0.0.0/8"), (60,)),
        ]
        compiler = compile_updates(records, metrics=metrics)
        events = list(compiler)
        assert [event.at for event in events] == [5.0, 3.0, 6.0]
        assert compiler.out_of_order == 1
        assert metrics.counters["ingest.out_of_order"] == 1

    def test_out_of_order_updates_strict_raises_with_line(self):
        records = [
            TraceRecord("announce", 5.0, 1, Prefix.parse("2.0.0.0/8"), (50,)),
            TraceRecord("announce", 3.0, 1, Prefix.parse("2.0.0.0/8"), (60,), line=2),
        ]
        with pytest.raises(TraceFormatError, match=r"<updates>:2: timestamp"):
            list(compile_updates(records, strict=True))

    def test_rib_record_in_update_feed_is_misplaced(self):
        records = [
            TraceRecord("announce", 1.0, 1, Prefix.parse("2.0.0.0/8"), (50,)),
            self._rib(1, "2.0.0.0/8", 50, at=2.0),
        ]
        compiler = compile_updates(records)
        assert len(list(compiler)) == 1
        assert compiler.misplaced == 1


def test_cli_strict_mode_fails_on_malformed_trace(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "bad.jsonl"
    trace.write_text(f"{GOOD_JSON}\nnot a record\n", encoding="utf-8")
    exit_code = main([
        "ingest", "--topology", str(TOPOLOGY), "--updates", str(trace), "--strict",
    ])
    assert exit_code == 1
    assert f"{trace}:2:" in capsys.readouterr().err


def test_pipeline_requires_some_input():
    with pytest.raises(ValueError, match="RIB dump, an update feed, or both"):
        TracePipeline()


# -- daemon feed tailing ---------------------------------------------------


def _event_line(at, prefix, origin):
    return json.dumps(
        {"kind": "announce", "at": at, "prefix": prefix, "origin": origin}
    )


def _daemon():
    lab = HijackLab(build_mini_graph(), seed=1)
    service = MonitorService(
        lab, probes=custom_probes("pair", [10, 20]), metrics=Metrics()
    )
    return ServiceDaemon(service)


async def _wait_for(predicate, *, timeout=10.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() >= deadline:
            pytest.fail("timed out waiting for the daemon feed to catch up")
        await asyncio.sleep(0.02)


class TestDaemonFeed:
    def test_oneshot_feed_counts_malformed_and_trailing_line(self, tmp_path):
        async def scenario():
            daemon = _daemon()
            await daemon.start()
            feed = tmp_path / "feed.jsonl"
            # garbage in the middle, final line without a trailing newline
            feed.write_text(
                _event_line(0.0, "10.0.0.0/16", 50) + "\n"
                + "garbage that parses as nothing\n"
                + "\n"
                + _event_line(1.0, "10.1.0.0/16", 60),
                encoding="utf-8",
            )
            daemon.feed_file(feed)
            await asyncio.gather(*daemon._feeds)
            plane = daemon.service.plane
            assert plane.ingested == 2
            assert plane.malformed == 1
            await daemon.stop()

        asyncio.run(scenario())

    def test_follow_survives_truncation(self, tmp_path):
        async def scenario():
            daemon = _daemon()
            await daemon.start()
            service = daemon.service
            feed = tmp_path / "feed.jsonl"
            feed.write_text(
                _event_line(0.0, "10.0.0.0/16", 50) + "\n"
                + _event_line(1.0, "10.1.0.0/16", 60) + "\n",
                encoding="utf-8",
            )
            daemon.feed_file(feed, follow=True)
            await _wait_for(lambda: service.plane.ingested >= 2)

            # Truncate: the file is rewritten shorter in place. The old
            # read offset now points past EOF and must be abandoned.
            feed.write_text(
                _event_line(2.0, "10.2.0.0/16", 70) + "\n", encoding="utf-8"
            )
            await _wait_for(lambda: service.plane.ingested >= 3)
            assert service.metrics.counters["service.feed.reopened"] == 1
            assert service.plane.malformed == 0
            await daemon.stop()

        asyncio.run(scenario())

    def test_follow_survives_rotation(self, tmp_path):
        async def scenario():
            daemon = _daemon()
            await daemon.start()
            service = daemon.service
            feed = tmp_path / "feed.jsonl"
            first = _event_line(0.0, "10.0.0.0/16", 50) + "\n"
            feed.write_text(first, encoding="utf-8")
            daemon.feed_file(feed, follow=True)
            await _wait_for(lambda: service.plane.ingested >= 1)

            # Rotate: a new file replaces the path. Pad the replacement
            # beyond the old offset so only the inode change — not a
            # shrunken size — can trigger the reopen.
            replacement = tmp_path / "feed.jsonl.new"
            padding = " " * (len(first) + 16) + "\n"
            replacement.write_text(
                padding + _event_line(2.0, "10.2.0.0/16", 70) + "\n",
                encoding="utf-8",
            )
            os.replace(replacement, feed)
            await _wait_for(lambda: service.plane.ingested >= 2)
            assert service.metrics.counters["service.feed.reopened"] == 1
            assert service.plane.malformed == 0
            await daemon.stop()

        asyncio.run(scenario())

    def test_follow_holds_back_partial_lines(self, tmp_path):
        async def scenario():
            daemon = _daemon()
            await daemon.start()
            service = daemon.service
            feed = tmp_path / "feed.jsonl"
            whole = _event_line(0.0, "10.0.0.0/16", 50) + "\n"
            partial = _event_line(1.0, "10.1.0.0/16", 60)
            feed.write_text(whole + partial[:20], encoding="utf-8")
            daemon.feed_file(feed, follow=True)
            await _wait_for(lambda: service.plane.ingested >= 1)

            # a writer caught mid-line must not yield a malformed count
            await asyncio.sleep(0.3)
            assert service.plane.ingested == 1
            assert service.plane.malformed == 0

            with feed.open("a", encoding="utf-8") as handle:
                handle.write(partial[20:] + "\n")
            await _wait_for(lambda: service.plane.ingested >= 2)
            assert service.plane.malformed == 0
            await daemon.stop()

        asyncio.run(scenario())
