"""Unit tests for the calibration report and its suite-extension driver."""

import pytest

from repro.attacks.lab import HijackLab
from repro.cli import main
from repro.experiments.calibration import PAPER_CONSTANTS, calibrate


@pytest.fixture(scope="module")
def report(medium_lab: HijackLab):
    return calibrate(medium_lab, agreement_samples=5, path_samples=30, seed=1)


class TestCalibration:
    def test_structural_numbers_match_summary(self, report, medium_graph):
        assert report.as_count == len(medium_graph)
        assert report.link_count == medium_graph.edge_count()
        assert report.links_per_as == pytest.approx(
            medium_graph.edge_count() / len(medium_graph)
        )

    def test_engines_agree_perfectly(self, report):
        assert report.engine_simulator_agreement == 1.0
        assert report.agreement_samples == 5

    def test_path_inflation_is_mild(self, report):
        # Valley-free routing on an internet-shaped graph barely inflates
        # path lengths.
        assert 1.0 <= report.path_inflation_mean < 1.5
        assert report.path_samples > 0

    def test_healthy(self, report):
        assert report.healthy()

    def test_render_mentions_paper_references(self, report):
        text = report.render()
        assert "62%" in text
        assert "42697" in text
        assert "healthy" in text

    def test_paper_constants_pinned(self):
        assert PAPER_CONSTANTS["tier1_count"] == 17
        assert PAPER_CONSTANTS["transit_fraction"] == pytest.approx(0.1479, abs=1e-3)

    def test_cli_calibrate(self, capsys):
        assert main([
            "calibrate", "--as-count", "500",
            "--agreement-samples", "3", "--path-samples", "15",
        ]) == 0
        assert "Calibration report" in capsys.readouterr().out


class TestSubprefixExtensionDriver:
    def test_ext_subprefix_summary(self, tmp_path):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.suite import ExperimentSuite
        from repro.topology.generator import GeneratorConfig

        suite = ExperimentSuite(ExperimentConfig(
            topology=GeneratorConfig.scaled(500, seed=23),
            seed=23,
            output_dir=tmp_path,
            attacker_sample=40,
            detection_attacks=50,
        ))
        result = suite.ext_subprefix()
        summary = result.summary
        assert summary["subprefix_hijack"]["mean"] >= summary["origin_hijack"]["mean"]
        assert summary["subprefix_dominates_fraction"] >= 0.9
        assert (
            summary["subprefix_with_core299_rov"]["mean"]
            < summary["subprefix_hijack"]["mean"]
        )
