"""Additional behaviour coverage: chart scales, lab cache, allocator
details, suite drivers not exercised elsewhere."""

import pytest

from repro.attacks.lab import HijackLab
from repro.parallel import ConvergenceCache
from repro.prefixes.addressing import AddressPlan
from repro.viz.charts import _nice_step, _ticks


class TestChartScales:
    def test_nice_step_values(self):
        assert _nice_step(10) == 2
        assert _nice_step(100) == 20
        assert _nice_step(7) == 2
        assert _nice_step(0.55) == 0.1
        assert _nice_step(0) == 1.0

    def test_ticks_cover_range(self):
        ticks = _ticks(0, 100)
        assert ticks[0] <= 0 and ticks[-1] >= 99
        assert all(b > a for a, b in zip(ticks, ticks[1:]))

    def test_ticks_negative_range(self):
        ticks = _ticks(-50, 50)
        assert any(tick <= -40 for tick in ticks)
        assert any(tick >= 40 for tick in ticks)


class TestLabCache:
    def test_cache_bounded(self, medium_graph):
        capacity = 64
        lab = HijackLab(medium_graph, seed=3, cache=ConvergenceCache(capacity))
        asns = medium_graph.asns()
        attacker = asns[0]
        targets = [asn for asn in asns[1:] if asn != attacker][: capacity + 10]
        for target in targets:
            if lab.view.node_of(target) == lab.view.node_of(attacker):
                continue
            lab.origin_hijack(target, attacker)
        assert len(lab.cache) <= capacity
        assert lab.cache.stats.evictions > 0

    def test_cache_hit_returns_same_object(self, medium_graph):
        lab = HijackLab(medium_graph, seed=3)
        target_node = lab.view.node_of(medium_graph.asns()[-1])
        first = lab._legitimate_state(target_node)
        second = lab._legitimate_state(target_node)
        assert first is second

    def test_attacker_pool_modes(self, medium_graph):
        from repro.topology.classify import transit_asns

        lab = HijackLab(medium_graph, seed=3)
        assert len(lab.attacker_pool()) == len(medium_graph)
        assert set(lab.attacker_pool(transit_only=True)) == transit_asns(medium_graph)

    def test_sibling_collision_rejected(self):
        from repro.topology.asgraph import ASGraph
        from repro.topology.relationships import Relationship

        graph = ASGraph()
        graph.add_as(1, tier1=True)
        graph.add_as(2, tier1=True)
        graph.add_relationship(1, 2, Relationship.PEER)
        for asn in (10, 11):
            graph.add_as(asn)
        graph.add_relationship(1, 10, Relationship.CUSTOMER)
        graph.add_relationship(10, 11, Relationship.SIBLING)
        lab = HijackLab(graph, seed=0)
        with pytest.raises(ValueError, match="sibling"):
            lab.origin_hijack(10, 11)


class TestAllocatorDetails:
    def test_extra_prefixes_appear(self):
        weights = {asn: 10.0 for asn in range(1, 200)}
        plan = AddressPlan.build(weights, seed=1, extra_prefix_probability=0.5)
        multi = [asn for asn in plan.all_asns() if len(plan.prefixes_of(asn)) > 1]
        assert len(multi) > 30

    def test_extra_prefixes_disabled(self):
        weights = {asn: 10.0 for asn in range(1, 50)}
        plan = AddressPlan.build(weights, seed=1, extra_prefix_probability=0.0)
        assert all(len(plan.prefixes_of(asn)) == 1 for asn in plan.all_asns())

    def test_extra_prefix_is_smaller(self):
        weights = {asn: 1000.0 for asn in range(1, 80)}
        plan = AddressPlan.build(weights, seed=2, extra_prefix_probability=1.0)
        for asn in plan.all_asns():
            prefixes = sorted(plan.prefixes_of(asn), key=lambda p: p.length)
            assert len(prefixes) == 2
            assert prefixes[0].length <= prefixes[1].length


class TestSuiteExtraDrivers:
    @pytest.fixture(scope="class")
    def suite(self, tmp_path_factory):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.suite import ExperimentSuite
        from repro.topology.generator import GeneratorConfig

        return ExperimentSuite(ExperimentConfig(
            topology=GeneratorConfig.scaled(500, seed=23),
            seed=23,
            output_dir=tmp_path_factory.mktemp("results"),
            attacker_sample=50,
            detection_attacks=100,
            external_sample=25,
        ))

    def test_fig1_frames_and_summary(self, suite):
        result = suite.fig1()
        assert result.summary["generations"] >= 2
        assert 0.0 < result.summary["address_space_fraction"] <= 1.0
        assert all(path.exists() for path in result.artifacts)

    def test_fig3(self, suite):
        result = suite.fig3()
        assert len(result.series) == 4

    def test_fig6_mirrors_fig5_structure(self, suite):
        fig5 = suite.fig5()
        fig6 = suite.fig6()
        assert set(fig5.summary["improvement_factors"]) == set(
            fig6.summary["improvement_factors"]
        )

    def test_tab2_and_tab4_and_tab5(self, suite):
        for method, table in (("tab2", "potent_attacks"), ("tab4", "undetected"),
                              ("tab5", "undetected")):
            result = getattr(suite, method)()
            assert table in result.tables

    def test_nz_filter_summary(self, suite):
        result = suite.nz_filter()
        assert 0.0 <= result.summary["regional_fraction_after"] <= 1.0
        assert result.summary["hub"] in suite.graph.asns()

    def test_run_all_covers_every_experiment(self, suite):
        results = suite.run_all()
        ids = [result.experiment_id for result in results]
        assert ids == [
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "tab1", "tab2",
            "fig7", "tab3", "tab4", "tab5", "nz_rehoming", "nz_filter",
            "ext_subprefix", "attack_matrix", "service_latency",
        ]

    def test_service_latency_parity(self, suite):
        result = suite.service_latency()
        assert result.summary["parity_all_shards"] is True
        assert [row["shards"] for row in result.tables["service"]] == [1, 2, 4]
        for row in result.tables["service"]:
            assert row["verdicts"] > 0
