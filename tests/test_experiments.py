"""Unit tests for experiment config, result store and the suite drivers.

The suite is exercised end-to-end on a small topology; phenomenon-level
assertions live in ``tests/integration/test_paper_phenomena.py``.
"""

import json

import pytest

from repro.experiments.config import ExperimentConfig, ExperimentResult
from repro.experiments.store import ResultStore
from repro.experiments.suite import ExperimentSuite
from repro.topology.generator import GeneratorConfig

SMALL_CONFIG = ExperimentConfig(
    topology=GeneratorConfig.scaled(500, seed=21),
    seed=21,
    attacker_sample=60,
    detection_attacks=120,
    external_sample=30,
)


@pytest.fixture(scope="module")
def suite(tmp_path_factory) -> ExperimentSuite:
    config = ExperimentConfig(
        topology=SMALL_CONFIG.topology,
        seed=SMALL_CONFIG.seed,
        output_dir=tmp_path_factory.mktemp("results"),
        attacker_sample=SMALL_CONFIG.attacker_sample,
        detection_attacks=SMALL_CONFIG.detection_attacks,
        external_sample=SMALL_CONFIG.external_sample,
    )
    return ExperimentSuite(config)


class TestResultShape:
    def test_json_round_trip(self):
        result = ExperimentResult(
            experiment_id="x", title="T",
            summary={"a": 1},
            series={"s": [(1.0, 2.0)]},
            tables={"t": [{"k": "v"}]},
        )
        payload = json.loads(result.to_json())
        assert payload["summary"]["a"] == 1
        assert payload["series"]["s"] == [[1.0, 2.0]]

    def test_save_json(self, tmp_path):
        result = ExperimentResult(experiment_id="x", title="T")
        path = result.save_json(tmp_path)
        assert path.name == "x.json"
        assert json.loads(path.read_text())["title"] == "T"

    def test_config_scaled(self):
        scaled = SMALL_CONFIG.scaled(attacker_sample=5, detection_attacks=9)
        assert scaled.attacker_sample == 5
        assert scaled.detection_attacks == 9
        assert scaled.topology == SMALL_CONFIG.topology


class TestStore:
    def test_record_and_latest(self):
        with ResultStore() as store:
            result = ExperimentResult(
                experiment_id="fig2", title="T", summary={"m": 2.5},
                series={"curve": [(0.0, 10.0), (5.0, 3.0)]},
                tables={"rows": [{"asn": 7}]},
            )
            run_id = store.record(result, params={"n": 500})
            latest = store.latest("fig2")
            assert latest.run_id == run_id
            assert latest.params == {"n": 500}
            assert latest.summary == {"m": 2.5}
            assert store.series(run_id, "curve") == [(0.0, 10.0), (5.0, 3.0)]
            assert store.series_labels(run_id) == ["curve"]
            assert store.table(run_id, "rows") == [{"asn": 7}]

    def test_history_ordering(self):
        with ResultStore() as store:
            for index in range(3):
                store.record(ExperimentResult("e", "T", summary={"i": index}))
            history = store.history("e")
            assert [run.summary["i"] for run in history] == [0, 1, 2]

    def test_latest_missing(self):
        with ResultStore() as store:
            assert store.latest("nope") is None

    def test_file_backed(self, tmp_path):
        path = tmp_path / "results.sqlite"
        with ResultStore(path) as store:
            store.record(ExperimentResult("e", "T"))
        with ResultStore(path) as store:
            assert store.latest("e") is not None


class TestSuiteDrivers:
    def test_fig2_series_and_summary(self, suite):
        result = suite.fig2()
        assert len(result.series) == 5
        assert result.artifacts and result.artifacts[0].exists()
        for label, stats in result.summary.items():
            if isinstance(stats, dict):
                assert stats["count"] > 0

    def test_fig4_shape_preserved(self, suite):
        assert suite.fig4().summary["shape_preserved"]

    def test_fig5_summary_has_ladder(self, suite):
        result = suite.fig5()
        assert "baseline" in result.summary
        assert "improvement_factors" in result.summary

    def test_tab1_rows(self, suite):
        result = suite.tab1()
        rows = result.tables["potent_attacks"]
        assert len(rows) <= 5
        for row in rows:
            assert {"attacker_asn", "pollution_count", "degree", "depth"} <= set(row)

    def test_fig7_histograms_sum_to_workload(self, suite):
        result = suite.fig7()
        for label, points in result.series.items():
            if label.endswith("/histogram"):
                assert sum(y for _, y in points) == suite.config.detection_attacks

    def test_tab3_rows_sorted(self, suite):
        rows = suite.tab3().tables["undetected"]
        sizes = [row["pollution_count"] for row in rows]
        assert sizes == sorted(sizes, reverse=True)

    def test_nz_results_have_paper_reference(self, suite):
        rehoming = suite.nz_rehoming()
        assert "paper" in rehoming.summary
        assert 0 <= rehoming.summary["regional_fraction_after"] <= 1

    def test_workload_memoized(self, suite):
        assert suite.detection_workload() is suite.detection_workload()
        assert suite.fig7_comparison() is suite.fig7_comparison()
