"""Unit tests for the fast routing engine (against hand-computed outcomes)."""

import pytest

from repro.bgp.engine import RouteState, RoutingEngine, UNREACHABLE
from repro.bgp.policy import PolicyConfig
from repro.topology.relationships import RouteClass


@pytest.fixture
def engine(mini_view):
    return RoutingEngine(mini_view)


class TestConverge:
    def test_everyone_reached(self, engine, mini_view):
        state = engine.converge(mini_view.node_of(50))
        assert all(state.has_route(node) for node in range(len(mini_view)))

    def test_classes_and_lengths(self, engine, mini_view):
        state = engine.converge(mini_view.node_of(50))
        expect = {
            50: (RouteClass.ORIGIN, 0), 30: (RouteClass.CUSTOMER, 1),
            10: (RouteClass.CUSTOMER, 2), 1: (RouteClass.CUSTOMER, 3),
            20: (RouteClass.PEER, 3), 2: (RouteClass.PEER, 4),
            80: (RouteClass.PROVIDER, 3), 40: (RouteClass.PROVIDER, 4),
            70: (RouteClass.PROVIDER, 4), 60: (RouteClass.PROVIDER, 5),
        }
        for asn, (route_class, length) in expect.items():
            node = mini_view.node_of(asn)
            assert state.route_class(node) is route_class, asn
            assert state.length[node] == length, asn

    def test_parent_paths_terminate_at_origin(self, engine, mini_view):
        origin = mini_view.node_of(50)
        state = engine.converge(origin)
        for asn in (60, 70, 2, 40):
            path = state.path_from(mini_view.node_of(asn))
            assert path[-1] == origin

    def test_path_lengths_match(self, engine, mini_view):
        state = engine.converge(mini_view.node_of(50))
        for node in range(len(mini_view)):
            assert len(state.path_from(node)) == state.length[node]

    def test_empty_state_shape(self):
        state = RouteState.empty(4, origin=0)
        assert state.length == [UNREACHABLE] * 4
        assert not state.has_route(2)
        assert state.route_class(1) is None


class TestHijack:
    def test_deep_stub_attacker(self, engine, mini_view):
        result = engine.hijack(mini_view.node_of(50), mini_view.node_of(60))
        assert result.polluted_asns(mini_view) == frozenset({40, 20, 2})
        assert result.pollution_count(mini_view) == 3

    def test_tier1_stub_attacker(self, engine, mini_view):
        result = engine.hijack(mini_view.node_of(50), mini_view.node_of(70))
        assert result.polluted_asns(mini_view) == frozenset({1, 2})

    def test_precomputed_legitimate_state_reused(self, engine, mini_view):
        target = mini_view.node_of(50)
        legit = engine.converge(target)
        result = engine.hijack(target, mini_view.node_of(60), legitimate=legit)
        assert result.polluted_asns(mini_view) == frozenset({40, 20, 2})
        # The legit state must not have been mutated by the attack pass.
        assert legit.origin_of[mini_view.node_of(40)] == target

    def test_wrong_legit_state_rejected(self, engine, mini_view):
        legit = engine.converge(mini_view.node_of(50))
        with pytest.raises(ValueError):
            engine.hijack(mini_view.node_of(60), mini_view.node_of(70), legitimate=legit)

    def test_self_attack_rejected(self, engine, mini_view):
        node = mini_view.node_of(50)
        with pytest.raises(ValueError):
            engine.hijack(node, node)

    def test_blocked_node_neither_adopts_nor_propagates(self, engine, mini_view):
        result = engine.hijack(
            mini_view.node_of(50),
            mini_view.node_of(60),
            blocked=[mini_view.node_of(20)],
        )
        assert result.polluted_asns(mini_view) == frozenset({40})

    def test_first_hop_stub_filter_stops_stub_attacker(self, engine, mini_view):
        result = engine.hijack(
            mini_view.node_of(50),
            mini_view.node_of(70),
            filter_first_hop_providers=True,
        )
        assert result.polluted_asns(mini_view) == frozenset()

    def test_first_hop_filter_ignores_transit_attackers(self, engine, mini_view):
        result = engine.hijack(
            mini_view.node_of(50),
            mini_view.node_of(40),
            filter_first_hop_providers=True,
        )
        # AS40 has a customer, so the filter does not apply.
        assert result.polluted_asns(mini_view)

    def test_is_polluted_map(self, engine, mini_view):
        result = engine.hijack(mini_view.node_of(50), mini_view.node_of(60))
        flags = result.is_polluted([mini_view.node_of(2), mini_view.node_of(10)])
        assert flags[mini_view.node_of(2)] is True
        assert flags[mini_view.node_of(10)] is False


class TestPolicyVariants:
    @pytest.fixture
    def chain_view(self):
        """Tier-1 AS1 ends up with a long customer route (via a provider
        chain) and a shorter peer route (via AS2) to the target AS13."""
        from repro.topology.asgraph import ASGraph
        from repro.topology.relationships import Relationship
        from repro.topology.view import RoutingView

        graph = ASGraph()
        graph.add_as(1, tier1=True)
        graph.add_as(2, tier1=True)
        for asn in (10, 11, 12, 13, 20):
            graph.add_as(asn)
        graph.add_relationship(1, 2, Relationship.PEER)
        graph.add_relationship(1, 10, Relationship.CUSTOMER)
        graph.add_relationship(10, 11, Relationship.CUSTOMER)
        graph.add_relationship(11, 12, Relationship.CUSTOMER)
        graph.add_relationship(12, 13, Relationship.CUSTOMER)
        graph.add_relationship(2, 20, Relationship.CUSTOMER)
        graph.add_relationship(20, 13, Relationship.CUSTOMER)
        return RoutingView.from_graph(graph)

    def test_tier1_shortest_path_prefers_short_peer_route(self, chain_view):
        engine = RoutingEngine(chain_view)
        state = engine.converge(chain_view.node_of(13))
        node_1 = chain_view.node_of(1)
        assert state.route_class(node_1) is RouteClass.PEER
        assert state.length[node_1] == 3  # via 2 -> 20 -> 13

    def test_tier1_ablation_restores_class_preference(self, chain_view):
        engine = RoutingEngine(chain_view, PolicyConfig(tier1_shortest_path=False))
        state = engine.converge(chain_view.node_of(13))
        node_1 = chain_view.node_of(1)
        assert state.route_class(node_1) is RouteClass.CUSTOMER
        assert state.length[node_1] == 4  # via 10 -> 11 -> 12 -> 13
