"""Unit tests for the oracle package: reference simulator semantics on a
hand-verifiable topology, the differential comparison itself, and the
``validate=`` plumbing through engine, lab and cache."""

import pytest

from repro.attacks.lab import HijackLab
from repro.bgp.engine import RoutingEngine
from repro.defense.deployment import Defense
from repro.oracle import (
    DifferentialError,
    InvariantViolation,
    ReferenceRoute,
    ReferenceSimulator,
    assert_states_agree,
    compare_states,
)
from repro.oracle.reference import CUSTOMER, ORIGIN, PEER, PROVIDER


# -- the reference simulator on the mini topology ---------------------------


def test_reference_routes_carry_full_paths(mini_view):
    """Routes are explicit paths ending at the origin; length is always
    the path length (nothing incrementally maintained to drift)."""
    origin = mini_view.node_of(50)
    table = ReferenceSimulator(mini_view).converge(origin)
    assert table[origin] == ReferenceRoute(origin=origin, path=(), route_class=ORIGIN)
    for node, route in table.items():
        assert route.length == len(route.path)
        if node != origin:
            assert route.path[-1] == origin
            assert route.origin == origin
            # The path is a real walk over view edges, node first hop last.
            hops = (node, *route.path)
            for a, b in zip(hops, hops[1:]):
                assert (
                    b in mini_view.customers[a]
                    or b in mini_view.peers[a]
                    or b in mini_view.providers[a]
                )


def test_reference_classes_follow_relationships(mini_view):
    """AS 50's announcement climbs the customer chain 30 → 10 → 1 as
    customer routes, crosses peerings as peer routes, and descends as
    provider routes — the valley-free shape, verified by hand."""
    table = ReferenceSimulator(mini_view).converge(mini_view.node_of(50))
    classes = {asn: table[mini_view.node_of(asn)].route_class
               for asn in (30, 10, 1, 2, 20, 40, 60)}
    assert classes[30] == CUSTOMER
    assert classes[10] == CUSTOMER
    assert classes[1] == CUSTOMER
    assert classes[2] == PEER  # tier-1 peering from 1
    assert classes[20] == PEER  # lateral peering from 10
    assert classes[40] == PROVIDER
    assert classes[60] == PROVIDER


def test_reference_valley_free_blocks_peer_reexport(mini_view):
    """A peer-learned route must not be exported onward to peers or
    providers: 2 learns AS 50's route from its peer 1, so 2 may only pass
    it down to its customer cone — which is how 20/40/60 get provider
    routes rather than anything shorter."""
    table = ReferenceSimulator(mini_view).converge(mini_view.node_of(50))
    node_60 = mini_view.node_of(60)
    # 60's route descends 20 → 40 → 60 after the 10–20 peer crossing:
    # five ASes traversed (50, 30, 10, 20, 40).
    assert table[node_60].route_class == PROVIDER
    assert table[node_60].length == 5


def test_reference_matches_engine_on_mini_topology(mini_view):
    engine = RoutingEngine(mini_view)
    oracle = ReferenceSimulator(mini_view)
    for asn in (50, 80, 1, 20):
        origin = mini_view.node_of(asn)
        assert_states_agree(
            mini_view, engine.converge(origin), oracle.converge(origin)
        )


def test_reference_hijack_matches_engine(mini_view):
    target = mini_view.node_of(50)
    attacker = mini_view.node_of(60)
    result = RoutingEngine(mini_view).hijack(target, attacker)
    table = ReferenceSimulator(mini_view).hijack(target, attacker)
    assert_states_agree(mini_view, result.final, table)
    assert result.polluted_nodes == ReferenceSimulator.holders_of(table, attacker)


def test_reference_rejects_self_hijack(mini_view):
    with pytest.raises(ValueError):
        ReferenceSimulator(mini_view).hijack(3, 3)


# -- the comparison reports precise disagreements ---------------------------


def test_compare_states_flags_each_field(mini_view):
    origin = mini_view.node_of(50)
    state = RoutingEngine(mini_view).converge(origin)
    table = ReferenceSimulator(mini_view).converge(origin)
    assert compare_states(mini_view, state, table) == []

    node = mini_view.node_of(60)
    doctored = dict(table)
    doctored[node] = ReferenceRoute(
        origin=table[node].origin,
        path=table[node].path + (table[node].path[-1],),
        route_class=table[node].route_class,
    )
    fields = {d.field for d in compare_states(mini_view, state, doctored)}
    assert fields == {"length"}

    del doctored[node]
    fields = {d.field for d in compare_states(mini_view, state, doctored)}
    assert fields == {"reachable"}

    with pytest.raises(DifferentialError, match="doctored run"):
        assert_states_agree(mini_view, state, doctored, context="doctored run")


# -- validate= plumbing -----------------------------------------------------


def test_validated_engine_matches_plain(mini_view):
    plain = RoutingEngine(mini_view)
    checked = RoutingEngine(mini_view, validate=True)
    origin = mini_view.node_of(80)
    assert plain.converge(origin).checksum() == checked.converge(origin).checksum()


def test_validated_lab_runs_attacks(mini_graph):
    """The full lab with runtime validation on: origin and sub-prefix
    hijacks, stub filter engaged, cache coherent afterwards."""
    lab = HijackLab(
        mini_graph, defense=Defense(stub_filter=True), seed=5, validate=True
    )
    assert lab.engine.validate and lab.cache.verify
    origin = lab.origin_hijack(target_asn=50, attacker_asn=60)
    sub = lab.subprefix_hijack(target_asn=50, attacker_asn=60)
    assert origin.polluted_asns <= sub.polluted_asns
    clone = lab.with_defense(Defense())
    assert clone.validate
    clone.origin_hijack(target_asn=50, attacker_asn=60)
    lab.cache.verify_coherence()


def test_validated_tier1_forged_path_attacker_is_stable():
    """A tier-1 attacker forging a type-N path holds its own padded
    origin route even though length-only ranking says a customer's
    shorter offer "beats" it — the announcer never replaces its own
    announcement, and the stability invariant must not flag it
    (regression: Hypothesis found this via taxonomy_scenarios)."""
    from repro.attacks.scenario import HijackKind, PathKind
    from repro.topology.asgraph import ASGraph, Relationship

    graph = ASGraph()
    graph.add_as(0, tier1=True)
    for asn in (1, 2, 3):
        graph.add_as(asn, region="west")
        graph.add_relationship(0, asn, Relationship.CUSTOMER)
    lab = HijackLab(graph, seed=0, validate=True)
    scenario = lab.build_scenario(
        1, 0, kind=HijackKind.ORIGIN, path_kind=PathKind.TYPE_N, forged_depth=1
    )
    outcome = lab.run_scenario(scenario)
    assert outcome.claimed_path[0] == 0


def test_cache_verify_coherence_detects_mutation(mini_graph):
    lab = HijackLab(mini_graph, seed=5)
    lab.origin_hijack(target_asn=50, attacker_asn=60)
    lab.cache.verify_coherence()
    (_key, (state, _checksum)) = lab.cache.entries()[0]
    state.origin_of = tuple(
        value + 1 if value >= 0 else value for value in state.origin_of
    )
    with pytest.raises(InvariantViolation, match="cache"):
        lab.cache.verify_coherence()


def test_strategies_module_exposes_shared_composites():
    """The strategy library is importable with the test extra installed
    and exports the composites the suite shares."""
    from repro.oracle import strategies

    for name in ("flat_graphs", "hierarchical_topologies", "hijack_cases",
                 "roa_tables", "deployment_vectors", "example_budget"):
        assert hasattr(strategies, name)


def test_example_budget_scales_with_env(monkeypatch):
    from repro.oracle.strategies import example_budget

    monkeypatch.delenv("REPRO_FUZZ_MULTIPLIER", raising=False)
    assert example_budget(50) == 50
    monkeypatch.setenv("REPRO_FUZZ_MULTIPLIER", "10")
    assert example_budget(50) == 500
    monkeypatch.setenv("REPRO_FUZZ_MULTIPLIER", "")
    assert example_budget(50) == 50
