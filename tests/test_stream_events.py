"""Unit tests for the stream event model, JSONL format and compilers."""

import pytest

from repro.attacks.scenario import HijackKind, HijackScenario, PathKind
from repro.prefixes.prefix import Prefix
from repro.stream.events import (
    Announce,
    DefenseActivate,
    RoaPublish,
    RoaRevoke,
    StreamFormatError,
    Withdraw,
    compile_campaign,
    compile_scenario,
    event_from_dict,
    event_to_dict,
    parse_event_line,
    read_events,
    write_events,
)

PFX = Prefix.parse("10.1.0.0/16")
SUB = Prefix.parse("10.1.128.0/17")

ALL_KINDS = [
    Announce(at=0.0, prefix=PFX, origin_asn=50),
    Announce(at=0.5, prefix=PFX, origin_asn=60, path=(60, 64512, 50)),
    Announce(at=0.75, prefix=PFX, origin_asn=60, replay="leak"),
    Withdraw(at=1.5, prefix=PFX, origin_asn=50),
    RoaPublish(at=2.0, prefix=PFX, origin_asn=50),
    RoaRevoke(at=3.0, prefix=PFX, origin_asn=50, max_length=24),
    DefenseActivate(at=4.0, deployer_asns=(1, 2, 10)),
]


class TestSerialization:
    def test_every_kind_round_trips(self):
        for event in ALL_KINDS:
            assert event_from_dict(event_to_dict(event)) == event

    def test_file_round_trip_identical_and_deterministic(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events(path, ALL_KINDS)
        assert read_events(path) == ALL_KINDS
        first = path.read_bytes()
        write_events(path, read_events(path))
        assert path.read_bytes() == first

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events(path, ALL_KINDS[:2])
        path.write_text("\n" + path.read_text().replace("\n", "\n\n"))
        assert read_events(path) == ALL_KINDS[:2]

    def test_event_to_dict_rejects_non_events(self):
        with pytest.raises(StreamFormatError, match="not a stream event"):
            event_to_dict(object())

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("not a dict", "must be an object"),
            ({"kind": "teleport", "at": 1.0}, "unknown event kind"),
            ({"at": 1.0}, "unknown event kind"),
            ({"kind": "announce", "at": True, "prefix": "10.1.0.0/16",
              "origin": 50}, "timestamp"),
            ({"kind": "announce", "at": 1.0, "origin": 50}, "missing prefix"),
            ({"kind": "announce", "at": 1.0, "prefix": "10.1.0.0/16",
              "origin": True}, "origin"),
            ({"kind": "announce", "at": 1.0, "prefix": "10.1.0.0/99",
              "origin": 50}, "malformed event"),
            ({"kind": "roa-publish", "at": 1.0, "prefix": "10.1.0.0/16",
              "origin": 50, "max_length": "x"}, "max_length"),
            ({"kind": "announce", "at": 1.0, "prefix": "10.1.0.0/16",
              "origin": 60, "path": [60, "50"]}, "invalid path"),
            ({"kind": "announce", "at": 1.0, "prefix": "10.1.0.0/16",
              "origin": 60, "replay": 7}, "invalid replay"),
            ({"kind": "announce", "at": 1.0, "prefix": "10.1.0.0/16",
              "origin": 60, "replay": "verbatim"}, "malformed event"),
            ({"kind": "defense-activate", "at": 1.0,
              "deployers": [1, "2"]}, "deployer"),
        ],
    )
    def test_event_from_dict_rejects(self, payload, match):
        with pytest.raises(StreamFormatError, match=match):
            event_from_dict(payload)

    def test_parse_event_line_rejects_invalid_json(self):
        with pytest.raises(StreamFormatError, match="invalid JSON"):
            parse_event_line("{nope")

    def test_read_events_is_strict_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        write_events(path, ALL_KINDS[:1])
        path.write_text(path.read_text() + "{broken\n")
        with pytest.raises(StreamFormatError, match=r"bad\.jsonl:2"):
            read_events(path)


class TestAnnounceValidation:
    def test_path_and_replay_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="either a path or a replay"):
            Announce(at=0.0, prefix=PFX, origin_asn=60, path=(60, 50),
                     replay="leak")

    def test_unknown_replay_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown replay mode"):
            Announce(at=0.0, prefix=PFX, origin_asn=60, replay="verbatim")

    def test_honest_wire_form_has_no_path_keys(self):
        payload = event_to_dict(Announce(at=0.0, prefix=PFX, origin_asn=50))
        assert "path" not in payload and "replay" not in payload


class TestCompileScenario:
    def test_origin_hijack_timeline(self):
        scenario = HijackScenario(target_asn=50, attacker_asn=60, prefix=PFX)
        events = compile_scenario(scenario, start=2.0, spacing=1.5)
        assert events == [
            Announce(at=2.0, prefix=PFX, origin_asn=50),
            Announce(at=3.5, prefix=PFX, origin_asn=60),
        ]

    def test_dwell_adds_attacker_withdraw(self):
        scenario = HijackScenario(target_asn=50, attacker_asn=60, prefix=PFX)
        events = compile_scenario(scenario, dwell=4.0)
        assert events[-1] == Withdraw(at=5.0, prefix=PFX, origin_asn=60)

    def test_subprefix_legitimate_announce_uses_covering_prefix(self):
        scenario = HijackScenario(
            target_asn=50, attacker_asn=60, prefix=SUB, kind=HijackKind.SUBPREFIX
        )
        legit, attack = compile_scenario(scenario)
        assert legit.origin_asn == 50 and legit.prefix == SUB.supernet()
        assert attack.origin_asn == 60 and attack.prefix == SUB

    def test_announce_legitimate_off(self):
        scenario = HijackScenario(target_asn=50, attacker_asn=60, prefix=PFX)
        events = compile_scenario(scenario, announce_legitimate=False)
        assert [event.origin_asn for event in events] == [60]

    def test_forged_path_rides_the_attacker_announce(self):
        scenario = HijackScenario(
            target_asn=50, attacker_asn=60, prefix=PFX,
            path_kind=PathKind.TYPE_N, forged_path=(60, 64512, 50),
        )
        _legit, attack = compile_scenario(scenario)
        assert attack.path == scenario.forged_path
        assert attack.replay == ""

    def test_type_u_lowers_to_replay_marker(self):
        scenario = HijackScenario(
            target_asn=50, attacker_asn=60, prefix=PFX,
            path_kind=PathKind.TYPE_U,
        )
        _legit, attack = compile_scenario(scenario)
        assert attack.replay == "unmodified" and attack.path == ()

    def test_route_leak_lowers_to_leak_marker(self):
        scenario = HijackScenario(
            target_asn=50, attacker_asn=60, prefix=PFX,
            kind=HijackKind.ROUTE_LEAK,
        )
        _legit, attack = compile_scenario(scenario)
        assert attack.replay == "leak" and attack.path == ()

    def test_squat_type_u_keeps_the_squatted_slice_dark(self):
        """A squatter's unmodified replay re-announces its own honest
        claim (it holds no route to the dark prefix), so the compiler
        emits a plain announce, and the legitimate origin announces only
        the covering prefix."""
        scenario = HijackScenario(
            target_asn=50, attacker_asn=60, prefix=SUB,
            kind=HijackKind.SQUAT, path_kind=PathKind.TYPE_U,
        )
        legit, attack = compile_scenario(scenario)
        assert legit.prefix == SUB.supernet()
        assert attack.prefix == SUB
        assert attack.path == () and attack.replay == ""


class TestCompileCampaign:
    def two_on_one(self):
        return [
            HijackScenario(target_asn=50, attacker_asn=60, prefix=PFX),
            HijackScenario(target_asn=50, attacker_asn=70, prefix=PFX),
        ]

    def test_legitimate_announced_once_per_prefix(self):
        events = compile_campaign(self.two_on_one())
        legit = [e for e in events if isinstance(e, Announce) and e.origin_asn == 50]
        assert len(legit) == 1

    def test_publish_roas_lands_at_start(self):
        events = compile_campaign(self.two_on_one(), start=3.0, publish_roas=True)
        roas = [event for event in events if isinstance(event, RoaPublish)]
        assert roas == [RoaPublish(at=3.0, prefix=PFX, origin_asn=50)]
        assert events[0] == roas[0]

    def test_time_ordered_with_stable_ties(self):
        events = compile_campaign(self.two_on_one(), stagger=0.0, dwell=2.0)
        stamps = [event.at for event in events]
        assert stamps == sorted(stamps)
        # Tied timestamps keep insertion order: first scenario's attacker
        # announce precedes the second scenario's.
        attackers = [
            event.origin_asn for event in events if isinstance(event, Announce)
            if event.origin_asn != 50
        ]
        assert attackers == [60, 70]
