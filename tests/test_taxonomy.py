"""The attack-taxonomy conformance matrix (the ISSUE's headline suite).

One table row per cell of the ARTEMIS grid — prefix axis (origin /
sub-prefix / squat / route-leak) × path axis (type-0/1/N/U) — asserting,
on **both** convergence backends:

* the exact polluted AS set on the hand-verifiable mini topology, open
  and under two receiver-side defenses (ROV everywhere, ROV + first-hop
  path check everywhere);
* the detection verdict under four detector policies (``none`` =
  historical data only, ``roa`` = ROV, ``roa+neighbors`` = ARTEMIS-style
  first-hop verification, ``full`` = + topology knowledge) — including
  the cells origin validation provably cannot catch (origin × type-1/N/U
  and the route leak are invisible to ``roa``).

Every lab runs with ``validate=True``, so each converged state also
passes the :mod:`repro.oracle.invariants` suite with claimed-path
padding. ``docs/attacks.md`` narrates the same matrix.
"""

from __future__ import annotations

import pytest

from repro.attacks.lab import HijackLab
from repro.attacks.scenario import (
    HijackKind,
    HijackScenario,
    PathKind,
    synthetic_forged_path,
)
from repro.defense.deployment import Defense
from repro.defense.strategies import DeploymentStrategy
from repro.detection.detector import HijackDetector
from repro.detection.moas import MoasVerdict
from repro.detection.probes import top_degree_probes
from repro.detection.taxonomy import (
    PathObservation,
    classify_observations,
    customer_cone,
    grid_cells,
    leak_suspect,
    nonexistent_links,
)
from repro.prefixes.prefix import Prefix
from repro.registry.neighbors import NeighborRegistry
from repro.registry.publication import PublicationState

from tests.conftest import build_mini_graph

TARGET, ATTACKER = 50, 60
FULL_POLLUTION = (1, 2, 10, 20, 30, 40, 50, 70, 80)

HIJACK = MoasVerdict.HIJACK
FORGED = MoasVerdict.FORGED_PATH
LEAK = MoasVerdict.ROUTE_LEAK

# One row per grid cell: expected polluted ASNs (open / ROV-everywhere /
# ROV+path-check-everywhere) and the verdict ladder (None = unclassified,
# i.e. the attack slips past that detector policy).
#   (kind, path_kind, open_polluted, rov_polluted, rov_path_polluted,
#    {policy: verdict})
MATRIX = [
    (HijackKind.ORIGIN, PathKind.TYPE_0, (2, 20, 40), (), (),
     {"none": HIJACK, "roa": HIJACK, "roa+neighbors": HIJACK, "full": HIJACK}),
    (HijackKind.ORIGIN, PathKind.TYPE_1, (20, 40), (20, 40), (),
     {"none": None, "roa": None, "roa+neighbors": FORGED, "full": FORGED}),
    (HijackKind.ORIGIN, PathKind.TYPE_N, (20, 40), (20, 40), (),
     {"none": None, "roa": None, "roa+neighbors": FORGED, "full": FORGED}),
    (HijackKind.ORIGIN, PathKind.TYPE_U, (20, 40), (20, 40), (20, 40),
     {"none": None, "roa": None, "roa+neighbors": None, "full": LEAK}),
    (HijackKind.SUBPREFIX, PathKind.TYPE_0, FULL_POLLUTION, (), (),
     {"none": HIJACK, "roa": HIJACK, "roa+neighbors": HIJACK, "full": HIJACK}),
    (HijackKind.SUBPREFIX, PathKind.TYPE_1, FULL_POLLUTION, (), (),
     {"none": None, "roa": HIJACK, "roa+neighbors": HIJACK, "full": HIJACK}),
    (HijackKind.SUBPREFIX, PathKind.TYPE_N, FULL_POLLUTION, (), (),
     {"none": None, "roa": HIJACK, "roa+neighbors": HIJACK, "full": HIJACK}),
    (HijackKind.SUBPREFIX, PathKind.TYPE_U, FULL_POLLUTION, (), (),
     {"none": None, "roa": HIJACK, "roa+neighbors": HIJACK, "full": HIJACK}),
    (HijackKind.SQUAT, PathKind.TYPE_0, FULL_POLLUTION, (), (),
     {"none": HIJACK, "roa": HIJACK, "roa+neighbors": HIJACK, "full": HIJACK}),
    (HijackKind.SQUAT, PathKind.TYPE_1, FULL_POLLUTION, (), (),
     {"none": None, "roa": HIJACK, "roa+neighbors": HIJACK, "full": HIJACK}),
    (HijackKind.SQUAT, PathKind.TYPE_N, FULL_POLLUTION, (), (),
     {"none": None, "roa": HIJACK, "roa+neighbors": HIJACK, "full": HIJACK}),
    (HijackKind.SQUAT, PathKind.TYPE_U, FULL_POLLUTION, (), (),
     {"none": HIJACK, "roa": HIJACK, "roa+neighbors": HIJACK, "full": HIJACK}),
    (HijackKind.ROUTE_LEAK, PathKind.TYPE_U, (20, 40), (20, 40), (20, 40),
     {"none": None, "roa": None, "roa+neighbors": None, "full": LEAK}),
]

CELL_IDS = [f"{kind.value}-{path_kind.value}" for kind, path_kind, *_ in MATRIX]

# The expected claimed path per cell (the AS path attribute as received,
# claimed origin last) — the mini topology's legitimate route 60→40→20→
# 10→30→50 drives the replayed cells.
CLAIMED = {
    (HijackKind.ORIGIN, PathKind.TYPE_0): (60,),
    (HijackKind.ORIGIN, PathKind.TYPE_1): (60, 50),
    (HijackKind.ORIGIN, PathKind.TYPE_N): (60, 64512, 50),
    (HijackKind.ORIGIN, PathKind.TYPE_U): (40, 20, 10, 30, 50),
    (HijackKind.SUBPREFIX, PathKind.TYPE_U): (40, 20, 10, 30, 50),
    (HijackKind.SQUAT, PathKind.TYPE_U): (60,),
    (HijackKind.ROUTE_LEAK, PathKind.TYPE_U): (60, 40, 20, 10, 30, 50),
}


@pytest.fixture(scope="module", params=["reference", "array"])
def grid(request):
    """One lab + the detector ladder + the defended labs, per backend."""
    graph = build_mini_graph()
    lab = HijackLab(graph, seed=0, validate=True, backend=request.param)
    authority = PublicationState.full(lab.plan).table()
    neighbors = NeighborRegistry.from_graph(graph)
    probes = top_degree_probes(graph, count=4)
    everyone = DeploymentStrategy("everyone", frozenset(graph.asns()))
    return {
        "graph": graph,
        "lab": lab,
        "rov": lab.with_defense(Defense(strategy=everyone, authority=authority)),
        "rov+path": lab.with_defense(
            Defense(strategy=everyone, authority=authority,
                    neighbors=neighbors, path_check=True)
        ),
        "detectors": {
            "none": HijackDetector(probes=probes),
            "roa": HijackDetector(probes=probes, authority=authority),
            "roa+neighbors": HijackDetector(
                probes=probes, authority=authority, neighbors=neighbors
            ),
            "full": HijackDetector(
                probes=probes, authority=authority,
                neighbors=neighbors, relationships=graph,
            ),
        },
    }


def _scenario(lab: HijackLab, kind: HijackKind, path_kind: PathKind) -> HijackScenario:
    return lab.build_scenario(
        TARGET, ATTACKER, kind=kind, path_kind=path_kind, forged_depth=2
    )


class TestConformanceMatrix:
    """The table itself: every cell, every policy, both backends."""

    @pytest.mark.parametrize(
        "kind,path_kind,open_polluted,rov_polluted,rov_path_polluted,verdicts",
        MATRIX, ids=CELL_IDS,
    )
    def test_cell(self, grid, kind, path_kind, open_polluted,
                  rov_polluted, rov_path_polluted, verdicts):
        lab = grid["lab"]
        scenario = _scenario(lab, kind, path_kind)
        outcome = lab.run_scenario(scenario)

        # Pollution: open network and both receiver-side defenses.
        assert outcome.polluted_asns == frozenset(open_polluted)
        assert grid["rov"].run_scenario(scenario).polluted_asns == frozenset(
            rov_polluted
        )
        assert grid["rov+path"].run_scenario(scenario).polluted_asns == frozenset(
            rov_path_polluted
        )

        # The claimed path carried by the announcement.
        expected_claim = CLAIMED.get((kind, path_kind))
        if expected_claim is not None:
            assert outcome.claimed_path == expected_claim

        # The detector ladder: every policy's verdict, exactly.
        for policy, expected in verdicts.items():
            report = grid["detectors"][policy].observe(outcome)
            assert report.verdict is expected, (
                f"{kind.value}/{path_kind.value} under {policy}: "
                f"expected {expected}, got {report.verdict}"
            )
            assert report.detected is (expected is not None)

    def test_every_grid_cell_is_covered(self):
        assert {(kind, path_kind) for kind, path_kind, *_ in MATRIX} == set(
            grid_cells()
        )
        assert len(grid_cells()) == 13

    def test_rov_blind_spot_is_real(self, grid):
        """The headline claim: a type-1 origin hijack carries a VALID
        claimed origin, so ROV neither blocks nor classifies it — yet it
        pollutes almost as much as the classic type-0."""
        lab = grid["lab"]
        type0 = lab.run_scenario(_scenario(lab, HijackKind.ORIGIN, PathKind.TYPE_0))
        type1 = lab.run_scenario(_scenario(lab, HijackKind.ORIGIN, PathKind.TYPE_1))
        assert grid["detectors"]["roa"].observe(type0).detected
        assert not grid["detectors"]["roa"].observe(type1).detected
        assert type1.pollution_count >= type0.pollution_count - 1

    def test_ladder_is_monotone(self, grid):
        """Each policy rung classifies a superset of the cells below it."""
        lab = grid["lab"]
        order = ["none", "roa", "roa+neighbors", "full"]
        caught = {policy: set() for policy in order}
        for kind, path_kind, *_ in MATRIX:
            outcome = lab.run_scenario(_scenario(lab, kind, path_kind))
            for policy in order:
                if grid["detectors"][policy].observe(outcome).detected:
                    caught[policy].add((kind, path_kind))
        # "none" is historical-data optimism (catches a mismatching
        # claimed origin without any published data), so monotonicity is
        # asserted from the published-data rungs upward.
        assert caught["roa"] <= caught["roa+neighbors"] <= caught["full"]
        assert caught["full"] == set(grid_cells())


class TestScenarioValidation:
    """Satellite: ``HijackScenario.__post_init__`` guards the new fields."""

    PREFIX = Prefix.parse("10.0.0.0/16")

    def _scenario(self, **overrides):
        base = dict(
            target_asn=TARGET, attacker_asn=ATTACKER, prefix=self.PREFIX
        )
        base.update(overrides)
        return HijackScenario(**base)

    def test_type1_autofills_forged_path(self):
        scenario = self._scenario(path_kind=PathKind.TYPE_1)
        assert scenario.forged_path == (ATTACKER, TARGET)
        assert scenario.forged_depth == 1

    def test_attacker_must_lead_its_own_forged_path(self):
        with pytest.raises(ValueError, match="attacker must appear first"):
            self._scenario(
                path_kind=PathKind.TYPE_N, forged_path=(99, 64512, TARGET)
            )

    def test_forged_path_must_end_at_target(self):
        with pytest.raises(ValueError, match="legitimate origin last"):
            self._scenario(
                path_kind=PathKind.TYPE_N, forged_path=(ATTACKER, 64512, 99)
            )

    def test_type0_rejects_forged_path(self):
        with pytest.raises(ValueError, match="type-0"):
            self._scenario(
                path_kind=PathKind.TYPE_0, forged_path=(ATTACKER, TARGET)
            )

    def test_synthetic_depth_must_be_positive(self):
        with pytest.raises(ValueError, match="depth"):
            synthetic_forged_path(ATTACKER, TARGET, 0)

    def test_synthetic_path_shape(self):
        path = synthetic_forged_path(ATTACKER, TARGET, 3)
        assert path == (ATTACKER, 64512, 64513, TARGET)

    def test_route_leak_normalizes_to_type_u(self):
        scenario = self._scenario(kind=HijackKind.ROUTE_LEAK)
        assert scenario.path_kind is PathKind.TYPE_U
        assert scenario.forged_path == ()

    def test_route_leak_rejects_forged_paths(self):
        with pytest.raises(ValueError, match="route leak"):
            self._scenario(
                kind=HijackKind.ROUTE_LEAK,
                path_kind=PathKind.TYPE_1,
            )

    def test_origin_default_is_backward_compatible(self):
        """Pickled sweep-cache keys from pre-taxonomy runs must keep
        hashing/comparing equal: the new fields default inert."""
        import pickle

        old_style = self._scenario()
        assert old_style.path_kind is PathKind.TYPE_0
        assert old_style.forged_path == ()
        assert old_style.static_claimed_path == (ATTACKER,)
        clone = pickle.loads(pickle.dumps(old_style))
        assert clone == old_style
        assert hash(clone) == hash(old_style)


class TestClassifierRules:
    """Direct unit coverage of the taxonomy rule ladder."""

    PREFIX = Prefix.parse("10.0.0.0/16")

    @pytest.fixture(scope="class")
    def graph(self):
        return build_mini_graph()

    def test_nonexistent_links_flags_fabricated_hops(self, graph):
        assert nonexistent_links((60, 64512, 50), graph) == (
            (60, 64512), (64512, 50),
        )
        assert nonexistent_links((40, 20, 10, 30, 50), graph) == ()

    def test_leak_suspect_requires_provider_or_peer_head(self, graph):
        assert leak_suspect((60, 40, 20, 10, 30, 50), graph)  # 40 is 60's provider
        assert leak_suspect((40, 20, 10, 30, 50), graph)  # 20 is 40's provider
        assert not leak_suspect((10, 30, 50), graph)  # 30 is 10's customer
        assert not leak_suspect((50,), graph)  # an origin cannot leak

    def test_customer_cone(self, graph):
        assert customer_cone(graph, 60) == {60}
        assert customer_cone(graph, 40) == {40, 60}
        assert customer_cone(graph, 10) == {10, 30, 50, 80}

    def test_leak_needs_a_witness_outside_the_cone(self, graph):
        tail = (60, 40, 20, 10, 30, 50)
        inside = classify_observations(
            self.PREFIX,
            [PathObservation(tail=tail, witnesses=(60,))],
            relationships=graph,
        )
        assert inside is None  # only seen inside 60's cone: no proof
        outside = classify_observations(
            self.PREFIX,
            [PathObservation(tail=tail, witnesses=(20,))],
            relationships=graph,
        )
        assert outside is not None
        assert outside.verdict is MoasVerdict.ROUTE_LEAK
        assert outside.culprit_paths == (tail,)

    def test_neighbor_registry_is_conservative(self, graph):
        registry = NeighborRegistry.from_graph(graph)
        assert registry.first_hop_forged((60, 50))  # 60 never sessions with 50
        assert not registry.first_hop_forged((30, 50))  # real first hop
        assert not registry.first_hop_forged((50,))  # nothing to verify
        partial = NeighborRegistry({50: (30,)})
        assert 99 not in partial
        assert not partial.first_hop_forged((60, 99))  # undeclared: no proof

    def test_moas_fallback_still_applies(self, graph):
        """With paths but no path-level proof, the origin-set logic of
        classify_moas decides — here an unverifiable two-origin MOAS."""
        report = classify_observations(
            self.PREFIX,
            [
                PathObservation(tail=(30, 50), witnesses=(10,)),
                PathObservation(tail=(40, 60), witnesses=(20,)),
            ],
        )
        assert report is not None
        assert report.verdict is MoasVerdict.UNVERIFIABLE
        assert report.origins == (50, 60)
