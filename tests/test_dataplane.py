"""Unit tests for data-plane forwarding traces and capture analysis."""

import pytest

from repro.attacks.dataplane import Fate, dataplane_capture, trace_forwarding
from repro.bgp.engine import RoutingEngine
from repro.util.rng import make_rng


@pytest.fixture
def mini_result(mini_view):
    engine = RoutingEngine(mini_view)
    return engine.hijack(mini_view.node_of(50), mini_view.node_of(60))


class TestTraceForwarding:
    def test_clean_node_delivers(self, mini_view, mini_result):
        # AS30 keeps its customer route straight to the target.
        trace = trace_forwarding(mini_result, mini_view.node_of(30))
        assert trace.fate is Fate.DELIVERED
        assert trace.hops[-1] == mini_view.node_of(50)

    def test_polluted_node_captured(self, mini_view, mini_result):
        # AS40 adopted the bogus route (customer route to attacker 60).
        trace = trace_forwarding(mini_result, mini_view.node_of(40))
        assert trace.fate is Fate.CAPTURED
        assert trace.hops[-1] == mini_view.node_of(60)

    def test_transitively_captured_via_polluted_upstream(self, mini_view, mini_result):
        # Tier-1 AS2 is polluted; its customer path runs through AS20,
        # which is also polluted — packets end at the attacker.
        trace = trace_forwarding(mini_result, mini_view.node_of(2))
        assert trace.fate is Fate.CAPTURED

    def test_hop_count(self, mini_view, mini_result):
        trace = trace_forwarding(mini_result, mini_view.node_of(40))
        assert trace.hop_count == len(trace.hops) >= 1


class TestDataplaneCapture:
    def test_partition_is_complete(self, mini_view, mini_result):
        report = dataplane_capture(mini_result)
        everyone = (
            report.delivered | report.captured | report.looping | report.stuck
        )
        assert len(everyone) == len(mini_view) - 2  # minus attacker, target
        assert report.delivered.isdisjoint(report.captured)

    def test_mini_topology_fates(self, mini_view, mini_result):
        report = dataplane_capture(mini_result)
        captured_asns = {mini_view.asn_of(node) for node in report.captured}
        # Control-plane polluted: {40, 20, 2}; all forward to the attacker.
        assert {40, 20, 2} <= captured_asns
        assert not report.looping and not report.stuck

    def test_hidden_capture_excludes_polluted(self, mini_result):
        report = dataplane_capture(mini_result)
        assert report.hidden_capture.isdisjoint(report.control_plane_polluted)

    def test_capture_inflation_at_least_one(self, mini_result):
        report = dataplane_capture(mini_result)
        assert report.capture_inflation() >= 1.0

    def test_no_attack_everything_delivers(self, mini_view):
        engine = RoutingEngine(mini_view)
        # A "hijack" that the defense fully blocks: everyone still delivers.
        everyone = frozenset(range(len(mini_view))) - {mini_view.node_of(60)}
        result = engine.hijack(
            mini_view.node_of(50), mini_view.node_of(60), blocked=everyone
        )
        report = dataplane_capture(result)
        assert report.captured == frozenset()
        assert report.capture_inflation() == 1.0


class TestMediumScale:
    def test_hidden_capture_exists_or_capture_matches(self, medium_lab):
        """On a realistic topology, data-plane capture meets or exceeds
        control-plane pollution across sampled attacks."""
        view = medium_lab.view
        engine = medium_lab.engine
        rng = make_rng(19, "dataplane")
        inflations = []
        for _ in range(8):
            target, attacker = rng.sample(range(len(view)), 2)
            result = engine.hijack(target, attacker)
            report = dataplane_capture(result)
            # Polluted nodes (loops aside) are captured on the data plane.
            assert report.control_plane_polluted <= (
                report.captured | report.looping
            )
            inflations.append(report.capture_inflation())
        assert all(value >= 1.0 for value in inflations)
