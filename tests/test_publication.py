"""Unit tests for publication state: who published, what validates."""

import pytest

from repro.prefixes.addressing import AddressPlan
from repro.prefixes.prefix import Prefix
from repro.registry.publication import PublicationState, plan_truth_table
from repro.registry.roa import ValidationState


@pytest.fixture
def plan() -> AddressPlan:
    plan = AddressPlan()
    plan.assign(65001, Prefix.parse("10.0.0.0/16"))
    plan.assign(65002, Prefix.parse("10.1.0.0/16"))
    plan.assign(65002, Prefix.parse("20.0.0.0/16"))
    return plan


class TestTruthTable:
    def test_all_allocations_covered(self, plan):
        table = plan_truth_table(plan)
        assert table.validate(Prefix.parse("10.0.0.0/16"), 65001) is ValidationState.VALID
        assert table.validate(Prefix.parse("20.0.0.0/16"), 65002) is ValidationState.VALID
        assert table.validate(Prefix.parse("10.0.0.0/16"), 65002) is ValidationState.INVALID


class TestParticipation:
    def test_unpublished_target_cannot_be_protected(self, plan):
        state = PublicationState.with_participants(plan, [65002])
        # 65001 never published: a hijack of its space is NOT_FOUND, which
        # filters must not drop (Section VII: publishing is critical).
        verdict = state.validate(Prefix.parse("10.0.0.0/16"), 64999)
        assert verdict is ValidationState.NOT_FOUND

    def test_published_target_is_protected(self, plan):
        state = PublicationState.with_participants(plan, [65001])
        assert state.validate(Prefix.parse("10.0.0.0/16"), 64999) is ValidationState.INVALID
        assert state.validate(Prefix.parse("10.0.0.0/16"), 65001) is ValidationState.VALID

    def test_publish_is_idempotent(self, plan):
        state = PublicationState(plan)
        state.publish(65002)
        state.publish(65002)
        assert len(state.table()) == 2

    def test_full_publication(self, plan):
        state = PublicationState.full(plan)
        assert state.participants == frozenset({65001, 65002})
        assert state.has_published(65001)


class TestMaterialization:
    def test_rpki_agrees_with_table(self, plan):
        state = PublicationState.full(plan)
        rpki = state.to_rpki()
        for prefix, asn in plan.items():
            assert rpki.validate(prefix, asn) is ValidationState.VALID
            assert rpki.validate(prefix, asn + 7) is ValidationState.INVALID

    def test_rover_agrees_with_table(self, plan):
        state = PublicationState.full(plan)
        rover = state.to_rover()
        for prefix, asn in plan.items():
            assert rover.validate(prefix, asn) is ValidationState.VALID
            assert rover.validate(prefix, asn + 7) is ValidationState.INVALID

    def test_partial_participation_materializes_partially(self, plan):
        state = PublicationState.with_participants(plan, [65001])
        rpki = state.to_rpki()
        assert rpki.validate(Prefix.parse("10.1.0.0/16"), 64999) is ValidationState.NOT_FOUND
