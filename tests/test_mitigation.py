"""Unit tests for reactive mitigation: purge and deaggregation."""

import pytest

from repro.attacks.lab import HijackLab
from repro.defense.mitigation import deaggregation_response, purge_response


@pytest.fixture
def mini_lab(mini_graph) -> HijackLab:
    return HijackLab(mini_graph, seed=1)


@pytest.fixture
def hijack(mini_lab):
    return mini_lab.origin_hijack(50, 60)  # pollutes {40, 20, 2}


class TestPurge:
    def test_responding_polluted_as_recovers(self, mini_lab, hijack):
        result = purge_response(mini_lab, hijack, responders=[20])
        assert 20 in result.recovered_asns
        # Purging AS20 also starves AS2 of the short bogus path.
        assert 2 in result.recovered_asns
        assert result.outcome_after.polluted_asns == frozenset({40})

    def test_full_response_cleans_everything(self, mini_lab, hijack):
        result = purge_response(mini_lab, hijack, responders=hijack.polluted_asns)
        assert result.residual_pollution == 0
        assert result.effectiveness() == 1.0

    def test_unrelated_responder_changes_nothing(self, mini_lab, hijack):
        result = purge_response(mini_lab, hijack, responders=[70])
        assert result.outcome_after.polluted_asns == hijack.polluted_asns
        assert result.effectiveness() == 0.0

    def test_responders_recorded(self, mini_lab, hijack):
        result = purge_response(mini_lab, hijack, responders=[20, 40])
        assert result.responders == frozenset({20, 40})

    def test_original_lab_defense_untouched(self, mini_lab, hijack):
        purge_response(mini_lab, hijack, responders=[20])
        assert mini_lab.defense.manual_filters == ()


class TestDeaggregation:
    def test_recovers_everyone_without_escalation(self, mini_lab, hijack):
        result = deaggregation_response(mini_lab, hijack)
        # Fresh more-specifics win everywhere: all 9 other ASes route the
        # deaggregated span back to the victim.
        assert len(result.announced) == 2
        assert result.recovery_fraction == 1.0
        assert hijack.polluted_asns <= result.recovered_asns

    def test_escalation_replays_the_contest(self, mini_lab, hijack):
        result = deaggregation_response(mini_lab, hijack, attacker_escalates=True)
        # The victim announces first (incumbent), so the attacker needs a
        # strictly better path — the same ASes fall as in the parent fight.
        assert result.contested_asns == hijack.polluted_asns
        assert result.recovery_fraction == 0.0

    def test_depth_limit(self, mini_lab):
        outcome = mini_lab.origin_hijack(50, 60)
        with pytest.raises(ValueError):
            deaggregation_response(mini_lab, outcome, extra_bits=33)

    def test_two_bit_deaggregation(self, mini_lab, hijack):
        result = deaggregation_response(mini_lab, hijack, extra_bits=2)
        assert len(result.announced) == 4
        assert result.recovery_fraction == 1.0


class TestMediumScale:
    def test_purge_by_core_is_effective(self, medium_lab):
        from repro.defense.strategies import top_degree_deployment

        target = medium_lab.graph.asns()[-1]
        attacker = sorted(medium_lab.graph.asns())[40]
        if medium_lab.view.node_of(target) == medium_lab.view.node_of(attacker):
            attacker = sorted(medium_lab.graph.asns())[41]
        outcome = medium_lab.origin_hijack(target, attacker)
        if not outcome.succeeded:
            pytest.skip("attack did not pollute anyone")
        responders = top_degree_deployment(medium_lab.graph, 40).deployers
        result = purge_response(medium_lab, outcome, responders)
        assert result.residual_pollution < outcome.pollution_count
