"""Unit tests for probes, detectors and the Fig. 7 analysis."""

import pytest

from repro.attacks.lab import HijackLab
from repro.detection.analysis import DetectionStudy, greedy_probe_placement
from repro.detection.detector import HijackDetector
from repro.detection.moas import MoasVerdict
from repro.detection.probes import (
    bgpmon_like_probes,
    custom_probes,
    random_transit_probes,
    tier1_probes,
    top_degree_probes,
)
from repro.prefixes.prefix import Prefix
from repro.registry.publication import PublicationState
from repro.registry.roa import RoaTable, RouteOriginAuthorization


@pytest.fixture
def mini_lab(mini_graph) -> HijackLab:
    return HijackLab(mini_graph, seed=1)


class TestProbeSets:
    def test_tier1_probes(self, mini_graph):
        probes = tier1_probes(mini_graph)
        assert probes.asns == frozenset({1, 2})

    def test_top_degree_probes(self, medium_graph):
        probes = top_degree_probes(medium_graph, count=10)
        assert len(probes) == 10

    def test_bgpmon_like_mix(self, medium_graph):
        probes = bgpmon_like_probes(medium_graph, count=24, seed=0)
        assert len(probes) == 24
        ranked = sorted(
            medium_graph.asns(), key=lambda asn: (-medium_graph.degree(asn), asn)
        )
        core = set(ranked[:4])
        assert probes.asns & core, "expected a few high-degree probes"
        assert probes.asns - set(ranked[:60]), "expected tail probes too"

    def test_bgpmon_like_deterministic(self, medium_graph):
        assert (
            bgpmon_like_probes(medium_graph, seed=0).asns
            == bgpmon_like_probes(medium_graph, seed=0).asns
        )

    def test_random_transit_probes(self, medium_graph):
        from repro.topology.classify import transit_asns

        probes = random_transit_probes(medium_graph, 8, seed=1)
        assert probes.asns <= transit_asns(medium_graph)

    def test_triggered_by(self):
        probes = custom_probes("x", [1, 2, 3])
        assert probes.triggered_by(frozenset({2, 9})) == frozenset({2})


class TestDetector:
    def test_detection_requires_polluted_probe(self, mini_lab):
        outcome = mini_lab.origin_hijack(50, 60)  # pollutes {40, 20, 2}
        seen = HijackDetector(custom_probes("hit", [20])).observe(outcome)
        missed = HijackDetector(custom_probes("miss", [10])).observe(outcome)
        assert seen.detected and seen.probe_count == 1
        assert not missed.detected and missed.seen is False

    def test_blind_spot_of_tier1_probes(self, mini_lab):
        # Attack 70 -> pollutes {1, 2}: tier-1 probes see it. But an attack
        # polluting only the east branch escapes a west-only probe.
        outcome = mini_lab.origin_hijack(50, 60)
        report = HijackDetector(custom_probes("west", [10, 30])).observe(outcome)
        assert not report.detected
        assert outcome.pollution_count == 3  # sizeable yet unseen

    def test_authority_gates_classification(self, mini_lab):
        publication = PublicationState.with_participants(mini_lab.plan, [])
        outcome = mini_lab.origin_hijack(50, 60)
        detector = HijackDetector(custom_probes("x", [20]), publication.table())
        report = detector.observe(outcome)
        # Probe polluted but the target never published: not classifiable.
        assert report.seen and not report.detected

    def test_published_target_is_classified(self, mini_lab):
        publication = PublicationState.with_participants(mini_lab.plan, [50])
        detector = HijackDetector(custom_probes("x", [20]), publication.table())
        assert detector.observe(mini_lab.origin_hijack(50, 60)).detected


class TestObserveConflict:
    """The event-by-event entry point a live monitor drives."""

    prefix = Prefix.parse("10.0.0.0/16")

    def detector(self, *roas) -> HijackDetector:
        authority = RoaTable(roas) if roas else None
        return HijackDetector(custom_probes("x", [1, 2]), authority)

    def roa(self, origin: int) -> RouteOriginAuthorization:
        return RouteOriginAuthorization(self.prefix, origin)

    def test_nothing_observed_is_not_a_conflict(self):
        assert self.detector().observe_conflict(self.prefix, ()) is None

    def test_single_origin_needs_published_data(self):
        # Without an authority a lone origin is unjudgeable; with one that
        # doesn't cover the prefix it's NOT_FOUND — no alarm either way.
        assert self.detector().observe_conflict(self.prefix, (60,)) is None
        other = RouteOriginAuthorization(Prefix.parse("11.0.0.0/16"), 50)
        assert self.detector(other).observe_conflict(self.prefix, (60,)) is None

    def test_single_valid_origin_is_quiet(self):
        report = self.detector(self.roa(50)).observe_conflict(self.prefix, (50,))
        assert report is None

    def test_single_invalid_origin_alarms_without_moas(self):
        # The sub-prefix shape: the bogus more-specific is the *only*
        # announcement for its NLRI, so there is no origin conflict at all
        # — published data is the only thing that can catch it.
        report = self.detector(self.roa(50)).observe_conflict(self.prefix, (60,))
        assert report is not None and report.alarm
        assert report.verdict is MoasVerdict.HIJACK
        assert report.invalid_origins == (60,)

    def test_moas_without_authority_is_unverifiable_alarm(self):
        report = self.detector().observe_conflict(self.prefix, (60, 50))
        assert report is not None and report.alarm
        assert report.verdict is MoasVerdict.UNVERIFIABLE
        assert report.origins == (50, 60)

    def test_moas_with_invalid_origin_is_hijack(self):
        report = self.detector(self.roa(50)).observe_conflict(
            self.prefix, [60, 50, 60]
        )
        assert report.verdict is MoasVerdict.HIJACK
        assert report.invalid_origins == (60,)

    def test_authorized_anycast_does_not_alarm(self):
        report = self.detector(self.roa(50), self.roa(60)).observe_conflict(
            self.prefix, (50, 60)
        )
        assert report.verdict is MoasVerdict.LEGITIMATE_ANYCAST
        assert not report.alarm


class TestStudy:
    @pytest.fixture
    def study(self, medium_lab) -> DetectionStudy:
        outcomes = medium_lab.random_attacks(120, seed=2)
        detector = HijackDetector(top_degree_probes(medium_lab.graph, count=20))
        return DetectionStudy.run(detector, outcomes)

    def test_histogram_accounts_for_every_attack(self, study):
        assert sum(study.histogram().values()) == study.attack_count == 120

    def test_miss_rate_consistent(self, study):
        histogram = study.histogram()
        assert study.miss_rate() == pytest.approx(
            histogram.get(0, 0) / study.attack_count
        )

    def test_mean_size_generally_grows_with_probe_count(self, study):
        means = study.mean_size_by_probe_count()
        buckets = [bucket for bucket in means if bucket > 0]
        if len(buckets) >= 2:
            assert means[max(buckets)] > means[min(buckets)]

    def test_top_undetected_sorted(self, study):
        rows = study.top_undetected(5)
        sizes = [row.pollution_count for row in rows]
        assert sizes == sorted(sizes, reverse=True)

    def test_undetected_summary_fields(self, study):
        summary = study.undetected_summary()
        assert summary["missed"] == len(study.missed())
        assert 0.0 <= summary["miss_rate"] <= 1.0


class TestGreedyPlacement:
    def test_covers_more_than_random(self, medium_lab):
        outcomes = medium_lab.random_attacks(80, seed=5)
        from repro.topology.classify import transit_asns

        candidates = sorted(transit_asns(medium_lab.graph))
        greedy = greedy_probe_placement(outcomes, candidates, count=5)
        random_set = random_transit_probes(medium_lab.graph, 5, seed=1)
        greedy_misses = DetectionStudy.run(
            HijackDetector(greedy), outcomes
        ).miss_rate()
        random_misses = DetectionStudy.run(
            HijackDetector(random_set), outcomes
        ).miss_rate()
        assert greedy_misses <= random_misses

    def test_respects_budget(self, medium_lab):
        outcomes = medium_lab.random_attacks(40, seed=6)
        probes = greedy_probe_placement(
            outcomes, medium_lab.graph.asns(), count=3
        )
        assert len(probes) <= 3

    def test_seed_probes_retained(self, medium_lab):
        outcomes = medium_lab.random_attacks(40, seed=6)
        probes = greedy_probe_placement(
            outcomes, medium_lab.graph.asns(), count=2, seed_probes=[1]
        )
        assert 1 in probes.asns
