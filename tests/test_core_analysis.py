"""Unit tests for the core analyses: roles, vulnerability, deployment,
detection comparison."""

import pytest

from repro.core.deployment_analysis import compare_strategies, top_potent_attacks
from repro.core.detection_analysis import compare_detectors, paper_probe_sets
from repro.core.roles import resolve_roles
from repro.core.vulnerability import (
    VulnerabilityProfile,
    attacker_aggressiveness,
    correlate_target_metrics,
    profile_target,
)
from repro.defense.strategies import no_deployment, tier1_deployment, top_degree_deployment
from repro.registry.publication import PublicationState
from repro.topology.classify import effective_depth, find_tier1, stub_asns


@pytest.fixture(scope="module")
def roles(medium_graph):
    return resolve_roles(medium_graph)


@pytest.fixture(scope="module")
def authority(medium_lab):
    return PublicationState.full(medium_lab.plan).table()


class TestRoles:
    def test_depth_assignments(self, medium_graph, roles):
        depth = effective_depth(medium_graph)
        assert depth[roles.depth1_single_stub] == 1
        assert depth[roles.depth1_multi_stub] == 1
        assert depth[roles.depth2_stub] == 2
        assert depth[roles.deep_target] == roles.deep_target_depth >= 4

    def test_homing_constraints(self, medium_graph, roles):
        tier1 = find_tier1(medium_graph)
        assert len(medium_graph.providers(roles.depth1_single_stub)) == 1
        assert len(medium_graph.providers(roles.depth1_multi_stub)) >= 2
        assert medium_graph.providers(roles.depth1_single_stub) <= tier1

    def test_targets_are_stubs(self, medium_graph, roles):
        stubs = stub_asns(medium_graph)
        assert roles.depth1_single_stub in stubs
        assert roles.deep_target in stubs

    def test_aggressive_attacker_is_shallow_transit(self, medium_graph, roles):
        depth = effective_depth(medium_graph)
        assert depth[roles.aggressive_attacker] <= 1
        assert medium_graph.customers(roles.aggressive_attacker)

    def test_fig2_targets_mapping(self, roles):
        targets = roles.fig2_targets()
        assert len(targets) == 5
        assert targets["tier-1"] == roles.tier1_target


class TestVulnerabilityProfiles:
    def test_deeper_targets_more_vulnerable(self, medium_lab, roles):
        shallow = profile_target(medium_lab, roles.depth1_multi_stub, sample=120)
        deep = profile_target(medium_lab, roles.deep_target, sample=120)
        assert deep.summary.mean > shallow.summary.mean
        assert deep.severity() > shallow.severity()

    def test_tier1_most_resistant(self, medium_lab, roles):
        tier1 = profile_target(medium_lab, roles.tier1_target, sample=120)
        deep = profile_target(medium_lab, roles.deep_target, sample=120)
        assert tier1.summary.mean < deep.summary.mean

    def test_attackers_polluting_at_least(self, medium_lab, roles):
        profile = profile_target(medium_lab, roles.deep_target, sample=120)
        total = profile.summary.count
        assert profile.attackers_polluting_at_least(0) == total
        assert profile.attackers_polluting_at_least(10 ** 9) == 0

    def test_from_outcomes_label_default(self, medium_lab, roles):
        outcomes = medium_lab.sweep_target(roles.deep_target, sample=10)
        profile = VulnerabilityProfile.from_outcomes(
            roles.deep_target, outcomes.values()
        )
        assert profile.label == f"AS{roles.deep_target}"

    def test_transit_only_scales_down(self, medium_lab, roles):
        worst = profile_target(medium_lab, roles.deep_target, sample=200, seed=1)
        filtered = profile_target(
            medium_lab, roles.deep_target, sample=200, seed=1, transit_only=True
        )
        assert filtered.summary.count <= worst.summary.count


class TestAggressiveness:
    def test_negative_depth_correlation(self, medium_lab, roles):
        # Paper: "attacker aggressiveness has a strong negative correlation
        # with attacker depth."
        depth = effective_depth(medium_lab.graph)
        by_depth = {}
        for asn, d in depth.items():
            by_depth.setdefault(d, asn)
        attackers = sorted(by_depth.values())
        targets = medium_lab.graph.asns()[:: len(medium_lab.graph) // 12][:12]
        records = attacker_aggressiveness(medium_lab, attackers, targets)
        shallow_mean = max(
            r.mean_pollution for r in records if r.depth <= 1
        )
        deep_records = [r for r in records if r.depth >= 3]
        if deep_records:
            assert min(r.mean_pollution for r in deep_records) < shallow_mean


class TestMetricCorrelations:
    def test_depth_correlates_positively(self, medium_lab):
        import random

        rng = random.Random(0)
        targets = rng.sample(sorted(stub_asns(medium_lab.graph)), 24)
        correlations = correlate_target_metrics(
            medium_lab, targets, attackers_sample=60
        )
        assert correlations.depth > 0.3
        assert correlations.samples == 24


class TestDeploymentComparison:
    def test_ladder_reduces_pollution(self, medium_lab, roles, authority):
        strategies = [
            no_deployment(),
            tier1_deployment(medium_lab.graph),
            top_degree_deployment(medium_lab.graph, 60),
        ]
        comparison = compare_strategies(
            medium_lab, roles.deep_target, strategies, authority, sample=100
        )
        means = [e.mean_successful_pollution for e in comparison.evaluations]
        assert means[0] > means[1] > means[2]
        assert comparison.is_monotone_improving()

    def test_crossover_found_for_core_deployment(self, medium_lab, roles, authority):
        strategies = [
            no_deployment(),
            tier1_deployment(medium_lab.graph),
            top_degree_deployment(medium_lab.graph, 60),
        ]
        comparison = compare_strategies(
            medium_lab, roles.deep_target, strategies, authority, sample=100
        )
        crossover = comparison.crossover(factor=5.0)
        assert crossover is not None
        assert crossover.strategy.name == "top-degree-60"

    def test_improvement_factors_baseline_is_one(self, medium_lab, roles, authority):
        comparison = compare_strategies(
            medium_lab, roles.deep_target, [no_deployment()], authority, sample=50
        )
        factors = comparison.improvement_factors()
        assert factors["baseline"] == pytest.approx(1.0)

    def test_top_potent_attacks_rows(self, medium_lab, roles, authority):
        rows = top_potent_attacks(
            medium_lab,
            roles.deep_target,
            top_degree_deployment(medium_lab.graph, 60),
            authority,
            count=5,
            sample=100,
        )
        assert len(rows) <= 5
        sizes = [row.pollution_count for row in rows]
        assert sizes == sorted(sizes, reverse=True)
        for row in rows:
            assert row.degree == medium_lab.graph.degree(row.attacker_asn)


class TestDetectorComparison:
    def test_paper_ordering(self, medium_lab):
        comparison = compare_detectors(
            medium_lab, paper_probe_sets(medium_lab), attack_count=250, seed=1
        )
        rates = comparison.miss_rates()
        tier1_name = next(name for name in rates if name.startswith("tier1"))
        top_name = next(name for name in rates if name.startswith("top-degree"))
        assert rates[tier1_name] > rates[top_name]
        assert comparison.best().detector.probes.name == top_name
        assert comparison.worst().detector.probes.name == tier1_name

    def test_shared_workload_size(self, medium_lab):
        comparison = compare_detectors(medium_lab, attack_count=100, seed=2)
        assert comparison.workload_size == 100
        for study in comparison.studies:
            assert study.attack_count == 100
