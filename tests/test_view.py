"""Unit tests for the compiled routing view (sibling collapse)."""

import pytest

from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship
from repro.topology.view import RoutingView


class TestBasics:
    def test_node_count_without_siblings(self, mini_graph):
        view = RoutingView.from_graph(mini_graph)
        assert len(view) == len(mini_graph)

    def test_adjacency_matches_graph(self, mini_graph):
        view = RoutingView.from_graph(mini_graph)
        node_10 = view.node_of(10)
        assert {view.asn_of(c) for c in view.customers[node_10]} == {30, 80}
        assert {view.asn_of(p) for p in view.peers[node_10]} == {20}
        assert {view.asn_of(p) for p in view.providers[node_10]} == {1}

    def test_tier1_flags(self, mini_graph):
        view = RoutingView.from_graph(mini_graph)
        assert view.is_tier1[view.node_of(1)]
        assert not view.is_tier1[view.node_of(10)]

    def test_has_asn_and_node_roundtrip(self, mini_graph):
        view = RoutingView.from_graph(mini_graph)
        for asn in mini_graph.asns():
            assert view.has_asn(asn)
            assert asn in view.members[view.node_of(asn)]
        assert not view.has_asn(999)

    def test_neighbor_nodes(self, mini_graph):
        view = RoutingView.from_graph(mini_graph)
        node = view.node_of(30)
        assert {view.asn_of(n) for n in view.neighbor_nodes(node)} == {10, 50}


def sibling_graph() -> ASGraph:
    """Siblings 30+31 jointly buy from 10 and serve customer 50."""
    graph = ASGraph()
    for asn in (1, 10, 30, 31, 50):
        graph.add_as(asn, tier1=asn == 1)
    graph.add_relationship(1, 10, Relationship.CUSTOMER)
    graph.add_relationship(10, 30, Relationship.CUSTOMER)
    graph.add_relationship(30, 31, Relationship.SIBLING)
    graph.add_relationship(31, 50, Relationship.CUSTOMER)
    return graph


class TestSiblingCollapse:
    def test_group_becomes_one_node(self):
        view = RoutingView.from_graph(sibling_graph())
        assert len(view) == 4
        assert view.node_of(30) == view.node_of(31)
        assert view.members[view.node_of(30)] == (30, 31)

    def test_merged_adjacency(self):
        view = RoutingView.from_graph(sibling_graph())
        group = view.node_of(30)
        assert {view.asn_of(p) for p in view.providers[group]} == {10}
        assert {view.asn_of(c) for c in view.customers[group]} == {50}

    def test_expand_returns_all_members(self):
        view = RoutingView.from_graph(sibling_graph())
        assert view.expand([view.node_of(30)]) == frozenset({30, 31})

    def test_member_count(self):
        view = RoutingView.from_graph(sibling_graph())
        assert view.member_count(view.node_of(31)) == 2
        assert view.member_count(view.node_of(50)) == 1

    def test_conflicting_merged_relationship_becomes_peer(self):
        graph = ASGraph()
        for asn in (30, 31, 40):
            graph.add_as(asn)
        graph.add_relationship(30, 31, Relationship.SIBLING)
        # 30 sells to 40 but 31 buys from 40: contradictory after merging.
        graph.add_relationship(30, 40, Relationship.CUSTOMER)
        graph.add_relationship(40, 31, Relationship.CUSTOMER)
        view = RoutingView.from_graph(graph)
        group = view.node_of(30)
        other = view.node_of(40)
        assert other in view.peers[group]
        assert group in view.peers[other]
        assert other not in view.customers[group]

    def test_sibling_chain_merges_transitively(self):
        graph = ASGraph()
        for asn in (1, 2, 3):
            graph.add_as(asn)
        graph.add_relationship(1, 2, Relationship.SIBLING)
        graph.add_relationship(2, 3, Relationship.SIBLING)
        view = RoutingView.from_graph(graph)
        assert len(view) == 1
        assert view.members[0] == (1, 2, 3)

    def test_nodes_of(self):
        view = RoutingView.from_graph(sibling_graph())
        assert view.nodes_of([30, 31]) == frozenset({view.node_of(30)})


class TestDeterminism:
    def test_same_graph_same_view(self, mini_graph):
        first = RoutingView.from_graph(mini_graph)
        second = RoutingView.from_graph(mini_graph)
        assert first.customers == second.customers
        assert first.members == second.members

    def test_unknown_asn_raises(self, mini_graph):
        view = RoutingView.from_graph(mini_graph)
        with pytest.raises(KeyError):
            view.node_of(12345)
