"""Calibration tests for the synthetic topology generator.

These pin the structural statistics the reproduction depends on: the
paper's CAIDA snapshot has 17 tier-1s, 14.7% transit ASes, and deep stubs
(depth 5+) — the experiment roles must exist at every supported scale.
"""

import pytest

from repro.topology.classify import effective_depth, find_tier1, stub_asns, summarize
from repro.topology.generator import (
    GeneratorConfig,
    default_address_plan,
    generate_topology,
)

from tests.conftest import MEDIUM_CONFIG


class TestConfig:
    def test_defaults_valid(self):
        GeneratorConfig()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(as_count=50)

    def test_bad_multihome_distribution(self):
        with pytest.raises(ValueError):
            GeneratorConfig(stub_multihome_probabilities=(0.5, 0.4))

    def test_scaled_produces_valid_configs(self):
        for size in (400, 900, 2000, 4270):
            config = GeneratorConfig.scaled(size)
            graph = generate_topology(config)
            assert len(graph) == size

    def test_scaled_accepts_overrides(self):
        config = GeneratorConfig.scaled(900, region_count=4, seed=3)
        assert config.region_count == 4
        assert config.seed == 3


class TestStructure:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate_topology(MEDIUM_CONFIG)

    def test_exact_as_count(self, graph):
        assert len(graph) == MEDIUM_CONFIG.as_count

    def test_tier1_clique(self, graph):
        tier1 = find_tier1(graph)
        assert len(tier1) == MEDIUM_CONFIG.tier1_count
        members = sorted(tier1)
        for index, a in enumerate(members):
            for b in members[index + 1:]:
                assert b in graph.peers(a), "tier-1 mesh must be complete"
            assert not graph.providers(a), "tier-1 ASes are provider-free"

    def test_transit_fraction_in_band(self, graph):
        stats = summarize(graph)
        assert 0.10 <= stats.transit_fraction <= 0.22

    def test_everyone_reaches_tier1_via_providers(self, graph):
        # depth defined for every AS = provider chains all terminate at the core.
        depth = effective_depth(graph)
        assert set(depth) == set(graph.asns())

    def test_deep_stubs_exist(self, graph):
        depth = effective_depth(graph)
        stubs = stub_asns(graph)
        assert max(depth[s] for s in stubs) >= 4

    def test_depth1_roles_exist(self, graph):
        tier1 = find_tier1(graph)
        single = multi = False
        for asn in stub_asns(graph):
            providers = graph.providers(asn)
            if providers and providers <= tier1:
                single = single or len(providers) == 1
                multi = multi or len(providers) >= 2
        assert single and multi

    def test_regions_cover_non_tier1(self, graph):
        regioned = {asn for members in graph.regions().values() for asn in members}
        tier1 = find_tier1(graph)
        assert regioned == set(graph.asns()) - tier1

    def test_heavy_tailed_degrees(self, graph):
        degrees = sorted((graph.degree(a) for a in graph.asns()), reverse=True)
        # Top 1% of ASes should hold a disproportionate share of links.
        top = sum(degrees[: max(1, len(degrees) // 100)])
        assert top / sum(degrees) > 0.05
        assert degrees[0] >= 10 * degrees[len(degrees) // 2]

    def test_validates(self, graph):
        graph.validate()


class TestIslandRegion:
    def test_island_members_buy_transit_inside_only(self, medium_graph):
        regions = medium_graph.regions()
        island = min(regions, key=lambda name: len(regions[name]))
        members = set(regions[island])
        from repro.topology.classify import find_tier1, find_tier2

        gateways = find_tier2(medium_graph) | find_tier1(medium_graph)
        for asn in members:
            if asn in gateways:
                continue  # gateway carriers hold the external links
            providers = medium_graph.providers(asn)
            assert providers <= members, (
                f"island AS{asn} buys transit outside the region"
            )

    def test_island_can_be_disabled(self):
        config = GeneratorConfig.scaled(500, seed=9, island_region=False)
        graph = generate_topology(config)
        regions = graph.regions()
        smallest = min(regions, key=lambda name: len(regions[name]))
        members = set(regions[smallest])
        outside_buyers = [
            asn
            for asn in members
            if graph.providers(asn) and not graph.providers(asn) <= members
        ]
        assert outside_buyers, "without the island flag some members mix"


class TestDeterminism:
    def test_same_seed_same_topology(self):
        config = GeneratorConfig.scaled(400, seed=11)
        first = generate_topology(config)
        second = generate_topology(config)
        assert list(first.edges()) == list(second.edges())

    def test_different_seed_different_topology(self):
        first = generate_topology(GeneratorConfig.scaled(400, seed=11))
        second = generate_topology(GeneratorConfig.scaled(400, seed=12))
        assert list(first.edges()) != list(second.edges())


class TestAddressPlan:
    def test_every_as_allocated(self, medium_graph):
        plan = default_address_plan(medium_graph)
        for asn in medium_graph.asns():
            assert plan.prefixes_of(asn)

    def test_core_owns_more_space(self, medium_graph):
        plan = default_address_plan(medium_graph)
        tier1 = next(iter(find_tier1(medium_graph)))
        stub = min(stub_asns(medium_graph))
        assert plan.address_space_of(tier1) > plan.address_space_of(stub)
