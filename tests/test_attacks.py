"""Unit tests for hijack scenarios and the HijackLab facade."""

import pytest

from repro.attacks.lab import HijackLab
from repro.attacks.scenario import HijackKind, HijackScenario
from repro.defense.deployment import Defense
from repro.defense.strategies import custom_deployment
from repro.prefixes.prefix import Prefix
from repro.registry.publication import PublicationState
from repro.topology.classify import transit_asns


@pytest.fixture
def mini_lab(mini_graph) -> HijackLab:
    return HijackLab(mini_graph, seed=1)


class TestScenario:
    def test_self_attack_rejected(self):
        with pytest.raises(ValueError):
            HijackScenario(1, 1, Prefix.parse("10.0.0.0/8"))

    def test_kind_default(self):
        scenario = HijackScenario(1, 2, Prefix.parse("10.0.0.0/8"))
        assert scenario.kind is HijackKind.ORIGIN


class TestOriginHijack:
    def test_matches_engine_hand_computation(self, mini_lab):
        outcome = mini_lab.origin_hijack(50, 60)
        assert outcome.polluted_asns == frozenset({40, 20, 2})
        assert outcome.pollution_count == 3
        assert outcome.succeeded

    def test_attacker_never_counts_as_polluted(self, mini_lab):
        outcome = mini_lab.origin_hijack(50, 60)
        assert 60 not in outcome.polluted_asns

    def test_address_fraction_reported(self, mini_lab):
        outcome = mini_lab.origin_hijack(50, 60)
        assert outcome.address_fraction is not None
        assert 0.0 < outcome.address_fraction < 1.0

    def test_uses_target_primary_prefix(self, mini_lab):
        outcome = mini_lab.origin_hijack(50, 60)
        assert outcome.scenario.prefix == mini_lab.target_prefix(50)

    def test_polluted_within_region(self, mini_lab, mini_graph):
        outcome = mini_lab.origin_hijack(50, 60)
        east = frozenset(mini_graph.regions()["east"])
        assert outcome.polluted_within(east) == 2  # 20 and 40


class TestSubprefixHijack:
    def test_wins_everywhere_without_defense(self, mini_lab):
        outcome = mini_lab.subprefix_hijack(50, 60)
        # A fresh more-specific has no competitor: all 9 other ASes adopt.
        assert outcome.pollution_count == 9
        assert outcome.scenario.kind is HijackKind.SUBPREFIX

    def test_announced_prefix_is_more_specific(self, mini_lab):
        outcome = mini_lab.subprefix_hijack(50, 60)
        parent = mini_lab.target_prefix(50)
        assert outcome.scenario.prefix.is_subprefix_of(parent)

    def test_rov_with_maxlength_semantics_blocks(self, mini_lab):
        # Everyone publishes exact-length ROAs, so the more-specific is
        # INVALID and a full deployment blocks it everywhere.
        publication = PublicationState.full(mini_lab.plan)
        defense = Defense(
            strategy=custom_deployment("all", mini_lab.graph.asns()),
            authority=publication.table(),
        )
        defended = mini_lab.with_defense(defense)
        outcome = defended.subprefix_hijack(50, 60)
        assert outcome.pollution_count == 0


class TestDefendedLab:
    def test_with_defense_shares_topology(self, mini_lab):
        defended = mini_lab.with_defense(Defense())
        assert defended.view is mini_lab.view
        assert defended.plan is mini_lab.plan

    def test_blocking_deployment_reduces_pollution(self, mini_lab):
        publication = PublicationState.full(mini_lab.plan)
        defense = Defense(
            strategy=custom_deployment("d", [20]),
            authority=publication.table(),
        )
        defended = mini_lab.with_defense(defense)
        outcome = defended.origin_hijack(50, 60)
        assert outcome.polluted_asns == frozenset({40})
        assert outcome.blocked_asns == frozenset({20})

    def test_stub_filter_blocks_stub_attacker(self, mini_lab):
        defended = mini_lab.with_defense(Defense(stub_filter=True))
        outcome = defended.origin_hijack(50, 70)
        assert outcome.pollution_count == 0

    def test_stub_filter_spares_transit_attacker(self, mini_lab):
        defended = mini_lab.with_defense(Defense(stub_filter=True))
        outcome = defended.origin_hijack(50, 40)
        assert outcome.succeeded


class TestSweeps:
    def test_sweep_covers_all_other_ases(self, mini_lab):
        outcomes = mini_lab.sweep_target(50)
        assert set(outcomes) == set(mini_lab.graph.asns()) - {50}

    def test_sweep_transit_only(self, mini_lab, mini_graph):
        outcomes = mini_lab.sweep_target(50, transit_only=True)
        assert set(outcomes) == set(transit_asns(mini_graph)) - {50}

    def test_sweep_sampling_deterministic(self, medium_lab):
        target = medium_lab.graph.asns()[-1]
        first = medium_lab.sweep_target(target, sample=20, seed=3)
        second = medium_lab.sweep_target(target, sample=20, seed=3)
        assert list(first) == list(second)
        assert len(first) == 20

    def test_sweep_explicit_attackers(self, mini_lab):
        outcomes = mini_lab.sweep_target(50, attackers=[60, 70])
        assert set(outcomes) == {60, 70}

    def test_random_attacks_workload(self, medium_lab):
        outcomes = medium_lab.random_attacks(25, seed=9)
        assert len(outcomes) == 25
        pool = transit_asns(medium_lab.graph)
        for outcome in outcomes:
            assert outcome.scenario.attacker_asn in pool
            assert outcome.scenario.target_asn in pool

    def test_random_attacks_deterministic(self, medium_lab):
        first = medium_lab.random_attacks(10, seed=4)
        second = medium_lab.random_attacks(10, seed=4)
        assert [o.scenario for o in first] == [o.scenario for o in second]


class TestSiblingExpansion:
    def test_polluted_sibling_group_counts_all_members(self):
        from repro.topology.asgraph import ASGraph
        from repro.topology.relationships import Relationship

        # tier-1 pair; victim stub under 1; sibling group {30, 31} under 2.
        graph = ASGraph()
        graph.add_as(1, tier1=True)
        graph.add_as(2, tier1=True)
        graph.add_relationship(1, 2, Relationship.PEER)
        for asn in (10, 30, 31, 40):
            graph.add_as(asn)
        graph.add_relationship(1, 10, Relationship.CUSTOMER)
        graph.add_relationship(2, 30, Relationship.CUSTOMER)
        graph.add_relationship(30, 31, Relationship.SIBLING)
        graph.add_relationship(30, 40, Relationship.CUSTOMER)
        lab = HijackLab(graph, seed=0)
        # AS40 hijacks AS10: its provider is the sibling group, which
        # adopts the bogus customer route — both members count.
        outcome = lab.origin_hijack(10, 40)
        assert {30, 31} <= outcome.polluted_asns


class TestRepeatedAnnouncements:
    def test_reannouncing_same_origin_is_stable(self, mini_view):
        from repro.bgp.simulator import BGPSimulator
        from repro.prefixes.prefix import Prefix

        prefix = Prefix.parse("10.0.0.0/8")
        sim = BGPSimulator(mini_view)
        origin = mini_view.node_of(50)
        first = sim.announce(origin, prefix)
        snapshot = {
            node: sim.route_to(prefix, node) for node in range(len(mini_view))
        }
        second = sim.announce(origin, prefix)
        for node in range(len(mini_view)):
            route = sim.route_to(prefix, node)
            assert route.origin == snapshot[node].origin
            assert route.length == snapshot[node].length
        assert second.adopters == first.adopters


class TestAnimate:
    def test_animate_reports_match_engine(self, mini_lab):
        legit, attack = mini_lab.animate(50, 60)
        assert legit.adopter_count() == 9
        polluted = {mini_lab.view.asn_of(node) for node in attack.adopters}
        assert polluted == {40, 20, 2}
        assert attack.events
