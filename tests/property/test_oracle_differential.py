"""Differential properties: the production engine against the oracle.

The reference simulator in :mod:`repro.oracle.reference` re-derives the
paper's routing model from the text, importing nothing from
``repro.bgp``; agreement here means two independent transcriptions of
Section III compute the same stable states. The properties cover the
bare engine (legitimate convergence and two-phase hijacks, blocking and
stub-filter variants included) and the full production stack — a
:class:`HijackLab` sweep through the convergence cache and the parallel
executor at several worker counts, cold and hot.

Budgets are scaled by ``REPRO_FUZZ_MULTIPLIER`` (see docs/testing.md);
at the default multiplier the suite checks well over 200 generated
(topology, scenario) pairs per run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.lab import HijackLab
from repro.bgp.engine import RoutingEngine
from repro.oracle import (
    ReferenceSimulator,
    assert_states_agree,
    random_hijack_cases,
)
from repro.oracle.differential import run_differential
from repro.oracle.strategies import (
    example_budget,
    hierarchical_topologies,
    hijack_cases,
    routing_views,
)

SWEEP_WORKER_COUNTS = (1, 4)


@settings(max_examples=example_budget(150), deadline=None)
@given(hijack_cases())
def test_hijack_matches_oracle(case):
    """Both phases of a hijack — with random blocking, policy variants and
    the stub filter — agree with the reference on every node's installed
    (origin, class, length) and on the polluted set."""
    engine = RoutingEngine(case.view, case.policy)
    oracle = ReferenceSimulator(
        case.view, tier1_shortest_path=case.policy.tier1_shortest_path
    )
    result = engine.hijack(
        case.target,
        case.attacker,
        blocked=case.blocked,
        filter_first_hop_providers=case.first_hop_filtered,
    )
    assert_states_agree(
        case.view, result.legitimate, oracle.converge(case.target),
        context="legitimate",
    )
    oracle_final = oracle.hijack(
        case.target,
        case.attacker,
        blocked=case.blocked,
        filter_first_hop_providers=case.first_hop_filtered,
    )
    assert_states_agree(case.view, result.final, oracle_final, context="final")
    assert result.polluted_nodes == ReferenceSimulator.holders_of(
        oracle_final, case.attacker
    )


@settings(max_examples=example_budget(60), deadline=None)
@given(routing_views(), st.data())
def test_legitimate_convergence_matches_oracle(view, data):
    origin = data.draw(st.integers(min_value=0, max_value=len(view) - 1),
                       label="origin")
    state = RoutingEngine(view).converge(origin)
    assert_states_agree(view, state, ReferenceSimulator(view).converge(origin))


@settings(max_examples=example_budget(8), deadline=None)
@given(hierarchical_topologies(min_size=12), st.data())
def test_lab_sweep_matches_oracle(graph, data):
    """The full production stack — lab, convergence cache, parallel
    executor — pollutes exactly the ASes the oracle predicts, at every
    worker count, cache cold and hot.

    ``min_size=12`` keeps sweeps above the executor's sequential-degrade
    threshold so ``workers=4`` genuinely exercises the process pool.
    """
    asns = sorted(graph.asns())
    target = data.draw(st.sampled_from(asns), label="target")
    view = None
    for workers in SWEEP_WORKER_COUNTS:
        lab = HijackLab(graph, seed=3, workers=workers, validate=True)
        if view is None:
            view = lab.view
            oracle = ReferenceSimulator(view)
        for _pass in ("cold", "hot"):
            outcomes = lab.sweep_target(target)
            for attacker_asn, outcome in outcomes.items():
                table = oracle.hijack(
                    view.node_of(target), view.node_of(attacker_asn)
                )
                expected = view.expand(
                    ReferenceSimulator.holders_of(table, view.node_of(attacker_asn))
                ) - {attacker_asn}
                assert outcome.polluted_asns == expected, attacker_asn
        lab.cache.verify_coherence()


def test_runtime_case_generator_is_deterministic_and_counted():
    """The Hypothesis-free runtime path (``repro-bgp validate``) draws a
    reproducible case stream and checks exactly the requested count."""
    first = list(random_hijack_cases(5, seed=42))
    second = list(random_hijack_cases(5, seed=42))
    assert [(c.target, c.attacker, c.blocked) for c in first] == [
        (c.target, c.attacker, c.blocked) for c in second
    ]
    assert run_differential(random_hijack_cases(25, seed=9)) == 25
