"""The array backend is checksum-identical to the reference kernel.

The backend contract (``docs/model.md``): ``backend="array"`` must
produce bit-for-bit the same :meth:`RouteState.checksum` as
``backend="reference"`` on every topology, origin, blocked set and
policy variant — it is a wall-clock knob, never a result knob. These
properties drive both kernels over generated hijack scenarios (two-phase
attacks with blocking and the stub filter), over announce/withdraw
chains through :meth:`RoutingEngine.converge_delta` (whose undo journal
must match entry for entry, and whose revert must land both backends on
the same state), and over the full :class:`HijackLab` stack.

At the default ``REPRO_FUZZ_MULTIPLIER`` the file checks well over 200
generated cases per run — the differential battery the ISSUE's
acceptance bar names.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.lab import HijackLab
from repro.bgp.engine import RoutingEngine
from repro.detection.detector import HijackDetector
from repro.detection.probes import top_degree_probes
from repro.oracle.strategies import (
    announce_withdraw_sequences,
    example_budget,
    hierarchical_topologies,
    hijack_cases,
    taxonomy_scenarios,
)
from repro.registry.neighbors import NeighborRegistry
from repro.registry.publication import PublicationState


def _engines(case):
    reference = RoutingEngine(case.view, case.policy)
    array = RoutingEngine(case.view, case.policy, backend="array")
    return reference, array


@settings(max_examples=example_budget(150), deadline=None)
@given(hijack_cases())
def test_hijack_checksums_match_reference(case):
    """Both hijack phases — legitimate convergence and the attacker's
    announcement stacked on it — hash identically under both backends,
    with random blocking, policy variants and the stub filter."""
    reference, array = _engines(case)
    ref_result = reference.hijack(
        case.target,
        case.attacker,
        blocked=case.blocked,
        filter_first_hop_providers=case.first_hop_filtered,
    )
    arr_result = array.hijack(
        case.target,
        case.attacker,
        blocked=case.blocked,
        filter_first_hop_providers=case.first_hop_filtered,
    )
    assert ref_result.legitimate.checksum() == arr_result.legitimate.checksum()
    assert ref_result.final.checksum() == arr_result.final.checksum()
    assert ref_result.polluted_nodes == arr_result.polluted_nodes


@settings(max_examples=example_budget(80), deadline=None)
@given(announce_withdraw_sequences())
def test_converge_delta_journal_parity(case):
    """Announce/withdraw chains through ``converge_delta`` produce the
    identical undo journal under both backends — same entries in the same
    install order — and reverting every announcement lands both on the
    same checksum at every step."""
    view, ops = case
    reference = RoutingEngine(view)
    array = RoutingEngine(view, backend="array")
    ref_state = arr_state = None
    ref_deltas, arr_deltas = [], []
    for kind, origin, blocked, first_hop in ops:
        if kind == "withdraw":
            continue  # rewinds are exercised below, newest-first
        if ref_state is None:
            n = len(view)
            from repro.bgp.engine import RouteState

            ref_state = RouteState.empty(n, origin)
            arr_state = RouteState.empty(n, origin)
        ref_delta = reference.converge_delta(
            ref_state, origin, blocked=blocked, filter_first_hop_providers=first_hop
        )
        arr_delta = array.converge_delta(
            arr_state, origin, blocked=blocked, filter_first_hop_providers=first_hop
        )
        assert ref_delta.journal == arr_delta.journal
        assert ref_state.checksum() == arr_state.checksum()
        ref_deltas.append(ref_delta)
        arr_deltas.append(arr_delta)
    while ref_deltas:
        ref_deltas.pop().revert(ref_state)
        arr_deltas.pop().revert(arr_state)
        assert ref_state.checksum() == arr_state.checksum()


@settings(max_examples=example_budget(60), deadline=None)
@given(taxonomy_scenarios())
def test_taxonomy_cells_match_reference(case):
    """Every attack-grid cell — forged paths, squats, replays, leaks —
    runs checksum-identically on both backends, with the same claimed
    path, the same polluted set, and the same detection verdict from the
    full path-aware detector."""
    graph, scenario = case
    ref_lab = HijackLab(graph, seed=0, validate=True)
    arr_lab = HijackLab(graph, seed=0, validate=True, backend="array")
    ref_outcome = ref_lab.run_scenario(scenario)
    arr_outcome = arr_lab.run_scenario(scenario)
    assert ref_outcome.claimed_path == arr_outcome.claimed_path
    assert ref_outcome.polluted_asns == arr_outcome.polluted_asns
    ref_state = ref_lab.claimed_path(scenario)  # resolves against baseline
    assert ref_state == arr_lab.claimed_path(scenario)
    detector = HijackDetector(
        probes=top_degree_probes(graph, count=6),
        authority=PublicationState.full(ref_lab.plan).table(),
        neighbors=NeighborRegistry.from_graph(graph),
        relationships=graph,
    )
    ref_report = detector.observe(ref_outcome)
    arr_report = detector.observe(arr_outcome)
    assert ref_report.verdict == arr_report.verdict
    assert ref_report.detected == arr_report.detected
    assert ref_report.triggered_probes == arr_report.triggered_probes


@settings(max_examples=example_budget(8), deadline=None)
@given(hierarchical_topologies(min_size=8), st.data())
def test_lab_sweep_outcomes_match_reference(graph, data):
    """The full production stack on the array backend — lab, convergence
    cache, sweep — pollutes exactly the ASes the reference backend
    computes, cold and hot."""
    asns = sorted(graph.asns())
    target = data.draw(st.sampled_from(asns), label="target")
    ref_lab = HijackLab(graph, seed=3)
    arr_lab = HijackLab(graph, seed=3, backend="array")
    for _pass in ("cold", "hot"):
        ref_outcomes = ref_lab.sweep_target(target)
        arr_outcomes = arr_lab.sweep_target(target)
        assert ref_outcomes.keys() == arr_outcomes.keys()
        for attacker_asn, ref_outcome in ref_outcomes.items():
            assert (
                ref_outcome.polluted_asns
                == arr_outcomes[attacker_asn].polluted_asns
            ), attacker_asn
