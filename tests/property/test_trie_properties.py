"""Property-based tests: the trie must behave exactly like a brute-force
dictionary of prefixes."""

from hypothesis import given
from hypothesis import strategies as st

from repro.prefixes.prefix import Prefix
from repro.prefixes.trie import PrefixTrie

prefixes = st.builds(
    Prefix.from_host,
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)
prefix_lists = st.lists(prefixes, max_size=40)


def build(entries):
    trie: PrefixTrie[int] = PrefixTrie()
    reference: dict[Prefix, int] = {}
    for index, prefix in enumerate(entries):
        trie.insert(prefix, index)
        reference[prefix] = index
    return trie, reference


@given(prefix_lists)
def test_matches_reference_dict(entries):
    trie, reference = build(entries)
    assert len(trie) == len(reference)
    for prefix, value in reference.items():
        assert trie[prefix] == value
    assert dict(trie.items()) == reference


@given(prefix_lists, st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_longest_match_is_brute_force_max(entries, address):
    trie, reference = build(entries)
    candidates = [p for p in reference if p.contains_address(address)]
    result = trie.longest_match(address)
    if not candidates:
        assert result is None
    else:
        expected = max(candidates, key=lambda p: p.length)
        assert result[0].length == expected.length
        assert result[0].contains_address(address)


@given(prefix_lists, prefixes)
def test_covering_is_brute_force_filter(entries, query):
    trie, reference = build(entries)
    expected = sorted(
        (p for p in reference if p.contains(query)), key=lambda p: p.length
    )
    found = [p for p, _ in trie.covering(query)]
    assert found == expected


@given(prefix_lists, prefixes)
def test_covered_by_is_brute_force_filter(entries, query):
    trie, reference = build(entries)
    expected = sorted(p for p in reference if query.contains(p))
    found = sorted(p for p, _ in trie.covered_by(query))
    assert found == expected


@given(prefix_lists, prefixes)
def test_iter_covered_is_brute_force_strict_filter(entries, query):
    trie, reference = build(entries)
    expected = sorted(p for p in reference if query.contains(p) and p != query)
    found = [p for p, _ in trie.iter_covered(query)]
    assert found == sorted(found)
    assert sorted(found) == expected
    for prefix, value in trie.iter_covered(query):
        assert value == reference[prefix]


@given(prefix_lists, st.data())
def test_removal_restores_absence(entries, data):
    trie, reference = build(entries)
    if not reference:
        return
    victim = data.draw(st.sampled_from(sorted(reference)))
    assert trie.remove(victim) == reference[victim]
    del reference[victim]
    assert victim not in trie
    assert dict(trie.items()) == reference


@given(prefix_lists)
def test_items_sorted(entries):
    trie, _ = build(entries)
    keys = [prefix for prefix, _ in trie.items()]
    assert keys == sorted(keys)
