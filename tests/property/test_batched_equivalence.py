"""The batched kernel is checksum-identical to N independent passes.

The batched contract (``docs/performance.md``): ``converge_batch`` over
K origins — fresh or stacked on a shared base, with per-column blocked
sets, stub-filter flags and claimed-path padding — must produce
bit-for-bit the same :meth:`RouteState.checksum` per column as K
independent ``converge`` calls, on both backends (the reference backend
degrades to exactly that loop). Likewise ``converge_delta_batch`` must
record per-column undo journals identical entry-for-entry to K scalar
``converge_delta`` passes, and reverting them must land back on the
warm-started base — the property the deployment-ladder sweep leans on
when it applies and rewinds one rung after another.

At the default ``REPRO_FUZZ_MULTIPLIER`` the file checks well over 150
generated cases per run — the batched differential battery the ISSUE's
acceptance bar names.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.lab import HijackLab
from repro.bgp.engine import RoutingEngine
from repro.oracle.strategies import (
    deployment_vectors,
    example_budget,
    hijack_cases,
    taxonomy_scenarios,
)


def _engines(case):
    reference = RoutingEngine(case.view, case.policy)
    array = RoutingEngine(case.view, case.policy, backend="array")
    return reference, array


def _draw_columns(data, case):
    """Per-column batch knobs: origins with blocking, filtering, padding."""
    n = len(case.view)
    nodes = st.integers(min_value=0, max_value=n - 1)
    count = data.draw(st.integers(min_value=1, max_value=5), label="batch width")
    origins = data.draw(
        st.lists(nodes, min_size=count, max_size=count), label="origins"
    )
    blocked_sets = [
        frozenset(data.draw(st.sets(nodes, max_size=max(0, n // 2)))) - {origin}
        for origin in origins
    ]
    first_hop_flags = data.draw(
        st.lists(st.booleans(), min_size=count, max_size=count)
    )
    origin_lengths = data.draw(
        st.lists(st.integers(min_value=0, max_value=3), min_size=count, max_size=count)
    )
    return origins, blocked_sets, first_hop_flags, origin_lengths


@settings(max_examples=example_budget(60), deadline=None)
@given(hijack_cases(), st.data())
def test_fresh_batch_matches_independent_converges(case, data):
    """A fresh ``converge_batch`` over K random columns — mixed blocked
    sets, stub filters and claimed-path padding per column — hashes
    identically to K independent ``converge`` calls on both backends,
    and the two backends agree with each other."""
    origins, blocked_sets, first_hop_flags, origin_lengths = _draw_columns(data, case)
    reference, array = _engines(case)
    expected = [
        reference.converge(
            origin,
            blocked=blocked,
            filter_first_hop_providers=first_hop,
            origin_length=length,
        ).checksum()
        for origin, blocked, first_hop, length in zip(
            origins, blocked_sets, first_hop_flags, origin_lengths
        )
    ]
    for engine in (reference, array):
        batch = engine.converge_batch(
            origins,
            blocked_sets=blocked_sets,
            first_hop_flags=first_hop_flags,
            origin_lengths=origin_lengths,
        )
        assert [state.checksum() for state in batch] == expected
        assert [state.origin for state in batch] == origins


@settings(max_examples=example_budget(40), deadline=None)
@given(hijack_cases(), st.data())
def test_shared_base_batch_matches_stacked_converges(case, data):
    """K attacker columns stacked on one shared legitimate baseline — the
    sweep workload — hash identically to K ``converge(base=...)`` calls,
    on both backends, without mutating the shared base."""
    origins, blocked_sets, first_hop_flags, origin_lengths = _draw_columns(data, case)
    reference, array = _engines(case)
    for engine in (reference, array):
        base = engine.converge(
            case.target, filter_first_hop_providers=case.first_hop_filtered
        )
        base_sum = base.checksum()
        expected = [
            engine.converge(
                origin,
                base=base,
                blocked=blocked,
                filter_first_hop_providers=first_hop,
                origin_length=length,
            ).checksum()
            for origin, blocked, first_hop, length in zip(
                origins, blocked_sets, first_hop_flags, origin_lengths
            )
        ]
        batch = engine.converge_batch(
            origins,
            base=base,
            blocked_sets=blocked_sets,
            first_hop_flags=first_hop_flags,
            origin_lengths=origin_lengths,
        )
        assert [state.checksum() for state in batch] == expected
        assert base.checksum() == base_sum


@settings(max_examples=example_budget(30), deadline=None)
@given(taxonomy_scenarios(), st.data())
def test_taxonomy_cells_match_unbatched_lab(case, data):
    """Every attack-grid cell, plus sibling scenarios against the same
    target, runs through a batched array lab with outcomes identical to
    the unbatched reference lab — same claimed paths, same polluted
    sets, in the caller's scenario order."""
    graph, scenario = case
    batch_width = data.draw(st.integers(min_value=2, max_value=4), label="width")
    ref_lab = HijackLab(graph, seed=0)
    arr_lab = HijackLab(graph, seed=0, backend="array", batch_origins=batch_width)
    target_node = arr_lab.view.node_of(scenario.target_asn)
    extra = [
        asn
        for asn in sorted(graph.asns())
        if asn not in (scenario.target_asn, scenario.attacker_asn)
        and arr_lab.view.node_of(asn) != target_node
    ][:3]
    scenarios = [scenario] + [
        arr_lab.build_scenario(scenario.target_asn, attacker) for attacker in extra
    ]
    ref_outcomes = [ref_lab.run_scenario(entry) for entry in scenarios]
    arr_outcomes = arr_lab.run_scenario_batch(scenarios)
    assert len(arr_outcomes) == len(ref_outcomes)
    for ref_outcome, arr_outcome in zip(ref_outcomes, arr_outcomes):
        assert ref_outcome.claimed_path == arr_outcome.claimed_path
        assert ref_outcome.polluted_asns == arr_outcome.polluted_asns
        assert ref_outcome.address_fraction == arr_outcome.address_fraction


@settings(max_examples=example_budget(30), deadline=None)
@given(hijack_cases(), st.data())
def test_warm_start_journal_parity_across_rungs(case, data):
    """The deployment-ladder warm start: ``converge_delta_batch`` over K
    columns records the same journals as K scalar ``converge_delta``
    passes, reverting lands every column back on the shared base, and a
    second adjacent rung applied to the reverted states equals that
    rung's cold convergence — on both backends."""
    origins, blocked_sets, first_hop_flags, origin_lengths = _draw_columns(data, case)
    asns = sorted(case.graph.asns())
    rungs = [
        frozenset(
            case.view.node_of(asn)
            for asn in data.draw(deployment_vectors(asns)).deployers
        )
        for _ in range(2)
    ]
    reference, array = _engines(case)
    for engine in (reference, array):
        base = engine.converge(case.target)
        base_sums = [base.copy_for(origin).checksum() for origin in origins]
        states = [base.copy_for(origin) for origin in origins]
        for rung in rungs:
            rung_blocked = [
                (blocked | rung) - {origin}
                for origin, blocked in zip(origins, blocked_sets)
            ]
            deltas = engine.converge_delta_batch(
                states,
                origins,
                blocked_sets=rung_blocked,
                first_hop_flags=first_hop_flags,
                origin_lengths=origin_lengths,
            )
            for index, origin in enumerate(origins):
                cold = reference.converge(
                    origin,
                    base=base,
                    blocked=rung_blocked[index],
                    filter_first_hop_providers=first_hop_flags[index],
                    origin_length=origin_lengths[index],
                )
                scalar_state = base.copy_for(origin)
                scalar_delta = reference.converge_delta(
                    scalar_state,
                    origin,
                    blocked=rung_blocked[index],
                    filter_first_hop_providers=first_hop_flags[index],
                    origin_length=origin_lengths[index],
                )
                assert deltas[index].journal == scalar_delta.journal
                assert states[index].checksum() == cold.checksum()
            for index, delta in enumerate(deltas):
                delta.revert(states[index])
                assert states[index].checksum() == base_sums[index]
