"""Property-based tests for CCDF curves and summaries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.ccdf import ccdf, describe

samples = st.lists(st.integers(min_value=0, max_value=10_000), max_size=200)


@given(samples)
def test_values_strictly_increasing_counts_strictly_decreasing(data):
    curve = ccdf(data)
    assert list(curve.values) == sorted(set(data))
    assert all(a > b for a, b in zip(curve.counts, curve.counts[1:]))


@given(samples)
def test_total_is_sample_count(data):
    assert ccdf(data).total == len(data)


@given(samples, st.integers(min_value=0, max_value=10_001))
def test_count_at_least_is_brute_force(data, threshold):
    curve = ccdf(data)
    assert curve.count_at_least(threshold) == sum(
        1 for value in data if value >= threshold
    )


@given(samples)
def test_count_at_least_monotone(data):
    curve = ccdf(data)
    counts = [curve.count_at_least(t) for t in range(0, 10_001, 500)]
    assert counts == sorted(counts, reverse=True)


@given(samples)
def test_area_is_sum(data):
    assert ccdf(data).area() == sum(data)


@given(samples)
def test_describe_consistency(data):
    summary = describe(data)
    assert summary.count == len(data)
    assert summary.successful == sum(1 for value in data if value > 0)
    if data:
        assert summary.maximum == max(data)
        assert summary.mean * summary.count == pytest.approx(sum(data))
    if summary.successful:
        assert summary.mean_successful >= summary.mean
