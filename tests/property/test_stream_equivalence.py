"""Incremental convergence is checksum-identical to cold recomputation.

The streaming subsystem's core guarantee (``docs/streaming.md``): after
*every* announce/withdraw, the :class:`PrefixLedger`'s live state equals
the chain :func:`full_converge` would compute from scratch over the
surviving announcements — bit-for-bit, via ``RouteState.checksum()``.
The first property is the ISSUE's acceptance bar (200+ generated event
sequences); the second runs the same equivalence with the runtime
invariant checker on, so the history-aware invariant suite itself is
exercised on multi-announcement states; the third checks that batching
and coalescing in the replay engine never change the flushed outcome.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.engine import RoutingEngine
from repro.oracle.strategies import announce_withdraw_sequences, example_budget
from repro.stream.incremental import PrefixLedger, full_converge


def _apply(ledger: PrefixLedger, op) -> None:
    kind, origin, blocked, first_hop = op
    if kind == "announce":
        assert ledger.announce(origin, blocked=blocked, first_hop_filtered=first_hop)
    else:
        assert ledger.withdraw(origin)


@settings(max_examples=example_budget(220), deadline=None)
@given(announce_withdraw_sequences())
def test_ledger_matches_full_convergence_after_every_op(case):
    view, ops = case
    engine = RoutingEngine(view)
    ledger = PrefixLedger(engine)
    for op in ops:
        _apply(ledger, op)
        reference = full_converge(engine, ledger.entries)
        if reference is None:
            assert ledger.state is None and ledger.checksum() is None
        else:
            assert ledger.checksum() == reference.checksum()


@settings(max_examples=example_budget(40), deadline=None)
@given(announce_withdraw_sequences(max_size=16, max_events=6))
def test_ledger_equivalence_survives_runtime_validation(case):
    """Same equivalence with ``validate=True``: every ledger apply runs the
    history-aware invariant suite and the rewind-checksum tripwire."""
    view, ops = case
    engine = RoutingEngine(view, validate=True)
    ledger = PrefixLedger(engine)
    for op in ops:
        _apply(ledger, op)
    reference = full_converge(engine, ledger.entries)
    if reference is None:
        assert ledger.state is None
    else:
        assert ledger.checksum() == reference.checksum()


@settings(max_examples=example_budget(30), deadline=None)
@given(announce_withdraw_sequences(max_size=14, max_events=8), st.data())
def test_withdraw_order_independence(case, data):
    """Withdrawing the remaining origins in any order from any reached
    state lands on the same chain state — interior rewinds replay the
    suffix correctly regardless of which entry is removed."""
    view, ops = case
    engine = RoutingEngine(view)
    ledger = PrefixLedger(engine)
    for op in ops:
        _apply(ledger, op)
    remaining = list(ledger.active_origins())
    order = data.draw(st.permutations(remaining), label="withdraw_order")
    for origin in order:
        assert ledger.withdraw(origin)
        reference = full_converge(engine, ledger.entries)
        if reference is None:
            assert ledger.state is None
        else:
            assert ledger.checksum() == reference.checksum()
    assert len(ledger) == 0
