"""Property-based tests for the Prefix value type."""

from hypothesis import given
from hypothesis import strategies as st

from repro.prefixes.prefix import Prefix

prefixes = st.builds(
    Prefix.from_host,
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)


@given(prefixes)
def test_parse_str_round_trip(prefix):
    assert Prefix.parse(str(prefix)) == prefix


@given(prefixes)
def test_contains_is_reflexive(prefix):
    assert prefix.contains(prefix)


@given(prefixes, prefixes)
def test_containment_antisymmetry(a, b):
    if a.contains(b) and b.contains(a):
        assert a == b


@given(prefixes, prefixes, prefixes)
def test_containment_transitivity(a, b, c):
    if a.contains(b) and b.contains(c):
        assert a.contains(c)


@given(prefixes)
def test_supernet_contains_child(prefix):
    if prefix.length > 0:
        parent = prefix.supernet()
        assert parent.contains(prefix)
        assert parent.size() == 2 * prefix.size()


@given(prefixes)
def test_subnets_partition_parent(prefix):
    if prefix.length < 32:
        halves = list(prefix.subnets())
        assert len(halves) == 2
        assert halves[0].size() + halves[1].size() == prefix.size()
        assert prefix.contains(halves[0]) and prefix.contains(halves[1])
        assert not halves[0].overlaps(halves[1])


@given(prefixes)
def test_size_matches_address_range(prefix):
    assert prefix.last_address() - prefix.first_address() + 1 == prefix.size()


@given(prefixes)
def test_bits_encode_network(prefix):
    bits = prefix.bits()
    assert len(bits) == prefix.length
    if prefix.length:
        assert int(bits, 2) == prefix.network >> (32 - prefix.length)


@given(prefixes, st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_contains_address_matches_from_host(prefix, address):
    assert prefix.contains_address(address) == (
        Prefix.from_host(address, prefix.length) == prefix
    )
