"""Properties of the MESSAGE PRIORITY rule (:func:`repro.bgp.policy.prefers`).

``prefers`` is the single comparison both production engines share; these
properties pin down that it is a strict weak order consistent with a sort
key — which is what lets the fast engine process candidates in
``(length, class)`` bucket order and still match the simulator — and
that the oracle's independent transcription (:func:`_better`) agrees
with it on every input.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.policy import prefers
from repro.oracle.reference import _better

# Any installed route: ORIGIN(0) through PROVIDER(3), lengths up to a
# loop-free diameter. ORIGIN routes always have length 0 in practice, but
# the comparison must be well-behaved on the whole domain.
routes = st.tuples(
    st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=32)
)
flags = st.booleans()


def sort_key(route, *, is_tier1, tier1_shortest_path):
    route_class, length = route
    if is_tier1 and tier1_shortest_path:
        return (length,)
    return (route_class, length)


@given(routes, flags, flags)
def test_irreflexive(route, is_tier1, exception):
    assert not prefers(is_tier1, route[0], route[1], route[0], route[1],
                       tier1_shortest_path=exception)


@given(routes, routes, flags, flags)
def test_asymmetric(new, old, is_tier1, exception):
    if prefers(is_tier1, new[0], new[1], old[0], old[1],
               tier1_shortest_path=exception):
        assert not prefers(is_tier1, old[0], old[1], new[0], new[1],
                           tier1_shortest_path=exception)


@given(routes, routes, routes, flags, flags)
def test_transitive(a, b, c, is_tier1, exception):
    beats = lambda x, y: prefers(is_tier1, x[0], x[1], y[0], y[1],
                                 tier1_shortest_path=exception)
    if beats(a, b) and beats(b, c):
        assert beats(a, c)


@given(routes, routes, flags, flags)
def test_matches_sort_key(new, old, is_tier1, exception):
    """Strict preference is exactly strict sort-key order — the property
    the engine's bucket queue relies on (and why ties keep incumbents)."""
    key = lambda route: sort_key(route, is_tier1=is_tier1,
                                 tier1_shortest_path=exception)
    assert prefers(is_tier1, new[0], new[1], old[0], old[1],
                   tier1_shortest_path=exception) == (key(new) < key(old))


@given(routes, routes, flags, flags)
def test_oracle_transcription_agrees(new, old, is_tier1, exception):
    """The oracle's independently transcribed rule decides every pair the
    same way as the production rule."""
    assert _better(
        is_tier1, new[0], new[1], old[0], old[1], tier1_shortest_path=exception
    ) == prefers(
        is_tier1, new[0], new[1], old[0], old[1], tier1_shortest_path=exception
    )
