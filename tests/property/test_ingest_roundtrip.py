"""Ingest round-trips are lossless and verdict-preserving.

The trace format's contract (``docs/ingestion.md``): a record survives
serialize → parse unchanged in both encodings; announce/withdraw events
survive ``events_to_records`` → ``compile_updates`` unchanged; and a
scenario lowered by ``compile_scenario``, written out as trace lines and
re-ingested, replays to the byte-identical monitor report — the trace
file is a faithful transport for attack campaigns, not a lossy export.
Runs in the nightly fuzz job at the scaled example budget.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.lab import HijackLab
from repro.attacks.scenario import HijackKind, HijackScenario, PathKind
from repro.detection.detector import HijackDetector
from repro.detection.probes import custom_probes
from repro.ingest import (
    TraceRecord,
    compile_rib,
    compile_updates,
    events_to_records,
    format_record,
    parse_record,
)
from repro.oracle.strategies import example_budget
from repro.prefixes.prefix import Prefix
from repro.stream.events import Announce, Withdraw, compile_scenario
from repro.stream.monitor import OnlineMonitor
from repro.stream.replay import StreamReplayer
from tests.conftest import build_mini_graph

asns = st.integers(min_value=1, max_value=2**32 - 1)
timestamps = st.floats(min_value=0.0, max_value=1e9,
                       allow_nan=False, allow_infinity=False)
prefixes = st.builds(
    Prefix.from_host,
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
)
encodings = st.sampled_from(("jsonl", "tsv"))


@st.composite
def trace_records(draw) -> TraceRecord:
    kind = draw(st.sampled_from(("rib", "announce", "withdraw")))
    path = tuple(draw(st.lists(asns, min_size=1, max_size=6)))
    return TraceRecord(
        kind=kind, at=draw(timestamps), peer_asn=draw(asns),
        prefix=draw(prefixes), path=path,
    )


@st.composite
def update_events(draw) -> list:
    """Announce/withdraw sequences shaped like compiled update feeds.

    Announce paths follow the announcer-first convention (empty = the
    honest claim), which is the only shape ``compile_updates`` emits —
    and therefore the domain on which the round-trip must be exact.
    """
    events = []
    clock = 0.0
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        clock += draw(st.floats(min_value=0.0, max_value=10.0,
                                allow_nan=False, allow_infinity=False))
        prefix = draw(prefixes)
        announcer = draw(asns)
        if draw(st.booleans()):
            tail = tuple(draw(st.lists(asns, min_size=0, max_size=4)))
            path = (announcer, *tail) if tail else ()
            events.append(Announce(at=clock, prefix=prefix,
                                   origin_asn=announcer, path=path))
        else:
            events.append(Withdraw(at=clock, prefix=prefix,
                                   origin_asn=announcer))
    return events


@settings(max_examples=example_budget(300), deadline=None)
@given(trace_records(), encodings)
def test_record_serialize_parse_roundtrip(record, encoding):
    line = format_record(record, encoding=encoding)
    assert parse_record(line) == record


@settings(max_examples=example_budget(200), deadline=None)
@given(update_events())
def test_events_to_records_to_events_is_lossless(events):
    records = events_to_records(events)
    assert list(compile_updates(records)) == events


@settings(max_examples=example_budget(150), deadline=None)
@given(update_events(), encodings)
def test_events_survive_the_wire_format(events, encoding):
    """events → records → text lines → records → events, end to end."""
    lines = [
        format_record(record, encoding=encoding)
        for record in events_to_records(events)
    ]
    parsed = [parse_record(line, number=index + 1)
              for index, line in enumerate(lines)]
    assert list(compile_updates(parsed)) == events


@settings(max_examples=example_budget(200), deadline=None)
@given(st.lists(trace_records().filter(lambda r: r.kind == "rib"),
                max_size=20))
def test_rib_baseline_classifies_its_own_entries_legit(records):
    baseline = compile_rib(records)
    for prefix, legal in baseline.origins.items():
        for origin in legal:
            assert baseline.classify(prefix, origin) == "legit"
    # the announce wave is one honest claim per distinct (prefix, origin)
    wave = {(event.prefix, event.origin_asn) for event in baseline.announces}
    assert len(wave) == len(baseline.announces)
    assert all(event.path == () for event in baseline.announces)


# -- verdict equivalence ---------------------------------------------------

_STUBS = (50, 60, 70, 80)


@st.composite
def mini_scenarios(draw) -> HijackScenario:
    target = draw(st.sampled_from(_STUBS))
    attacker = draw(st.sampled_from([asn for asn in _STUBS if asn != target]))
    kind = draw(st.sampled_from((HijackKind.ORIGIN, HijackKind.SUBPREFIX)))
    path_kind = draw(st.sampled_from((PathKind.TYPE_0, PathKind.TYPE_1)))
    lab = HijackLab(build_mini_graph(), seed=2014)
    prefix = lab.plan.primary_prefix(target)
    if kind is HijackKind.SUBPREFIX:
        prefix = next(prefix.subnets())
    return HijackScenario(
        target_asn=target, attacker_asn=attacker, prefix=prefix,
        kind=kind, path_kind=path_kind,
    )


def _replay_report(events) -> dict:
    lab = HijackLab(build_mini_graph(), seed=2014)
    replayer = StreamReplayer(lab)
    detector = HijackDetector(
        custom_probes("pair", [10, 20]), authority=replayer.authority
    )
    replayer.monitor = OnlineMonitor(lab.view, detector)
    for event in events:
        replayer.submit(event)
    return replayer.finish().as_dict()


@settings(max_examples=example_budget(25), deadline=None)
@given(mini_scenarios(), st.one_of(st.none(), st.floats(
    min_value=0.5, max_value=8.0, allow_nan=False, allow_infinity=False)))
def test_ingested_scenario_replays_to_identical_report(scenario, dwell):
    """A compiled campaign re-ingested from trace lines keeps its verdicts."""
    events = compile_scenario(scenario, spacing=1.0, dwell=dwell)
    lines = [format_record(r) for r in events_to_records(events)]
    ingested = list(compile_updates(
        parse_record(line, number=index + 1)
        for index, line in enumerate(lines)
    ))
    assert ingested == events
    assert _replay_report(ingested) == _replay_report(events)
