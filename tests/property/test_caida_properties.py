"""Property-based tests: CAIDA serialization round-trips any topology."""

from hypothesis import given
from hypothesis import strategies as st

from repro.topology.asgraph import ASGraph
from repro.topology.caida import dumps_caida, loads_caida
from repro.topology.relationships import Relationship

_REL = st.sampled_from(
    [Relationship.CUSTOMER, Relationship.PEER, Relationship.SIBLING]
)


@st.composite
def graphs(draw):
    size = draw(st.integers(min_value=2, max_value=30))
    graph = ASGraph()
    for asn in range(1, size + 1):
        graph.add_as(asn)
    edge_count = draw(st.integers(min_value=0, max_value=size * 2))
    for _ in range(edge_count):
        a = draw(st.integers(min_value=1, max_value=size))
        b = draw(st.integers(min_value=1, max_value=size))
        if a == b or graph.relationship(a, b) is not None:
            continue
        graph.add_relationship(a, b, draw(_REL))
    return graph


@given(graphs())
def test_round_trip_preserves_all_links(graph):
    restored = loads_caida(dumps_caida(graph))
    assert restored.edge_count() == graph.edge_count()
    for a, b, relationship in graph.edges():
        assert restored.relationship(a, b) is relationship


@given(graphs(), st.sampled_from([1, 2]))
def test_round_trip_both_serials(graph, serial):
    restored = loads_caida(dumps_caida(graph, serial=serial))
    assert sorted(restored.asns()) == sorted(
        asn for asn in graph.asns() if graph.degree(asn) > 0
    ) or restored.edge_count() == graph.edge_count()


@given(graphs())
def test_dump_is_deterministic(graph):
    assert dumps_caida(graph) == dumps_caida(graph)
