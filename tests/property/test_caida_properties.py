"""Property-based tests: CAIDA serialization round-trips any topology.

Graphs come from the shared strategy library (arbitrary flat graphs, not
hierarchies — serialization must survive anything, routable or not).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.oracle.strategies import flat_graphs
from repro.topology.caida import dumps_caida, loads_caida


@given(flat_graphs())
def test_round_trip_preserves_all_links(graph):
    restored = loads_caida(dumps_caida(graph))
    assert restored.edge_count() == graph.edge_count()
    for a, b, relationship in graph.edges():
        assert restored.relationship(a, b) is relationship


@given(flat_graphs(), st.sampled_from([1, 2]))
def test_round_trip_both_serials(graph, serial):
    restored = loads_caida(dumps_caida(graph, serial=serial))
    assert sorted(restored.asns()) == sorted(
        asn for asn in graph.asns() if graph.degree(asn) > 0
    ) or restored.edge_count() == graph.edge_count()


@given(flat_graphs())
def test_dump_is_deterministic(graph):
    assert dumps_caida(graph) == dumps_caida(graph)
