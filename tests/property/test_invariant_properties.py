"""The invariant suite holds on everything the engine produces — and
actually fires on corrupted states.

Half of the value of a runtime checker is that it never cries wolf on
legitimate outcomes (first two properties); the other half is that it
*does* catch the failure modes it claims to (the corruption tests, which
break a genuinely converged state in targeted ways and expect
:class:`InvariantViolation`).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.engine import _NO_CLASS, UNREACHABLE, RoutingEngine
from repro.oracle import InvariantViolation, check_hijack_result, check_route_state
from repro.oracle.invariants import check_convergence_deterministic
from repro.oracle.strategies import example_budget, hijack_cases, routing_views


@settings(max_examples=example_budget(80), deadline=None)
@given(hijack_cases())
def test_hijack_outcomes_satisfy_invariants(case):
    engine = RoutingEngine(case.view, case.policy)
    result = engine.hijack(
        case.target,
        case.attacker,
        blocked=case.blocked,
        filter_first_hop_providers=case.first_hop_filtered,
    )
    check_hijack_result(
        case.view,
        result,
        policy=case.policy,
        blocked=case.blocked,
        first_hop_filtered=case.first_hop_filtered,
    )


@settings(max_examples=example_budget(40), deadline=None)
@given(routing_views(), st.data())
def test_legitimate_states_satisfy_invariants(view, data):
    origin = data.draw(st.integers(min_value=0, max_value=len(view) - 1),
                       label="origin")
    engine = RoutingEngine(view)
    check_route_state(view, engine.converge(origin))
    check_convergence_deterministic(engine, origin)


# -- the checker fires on corrupted states ----------------------------------


@pytest.fixture
def converged(mini_view):
    """A genuinely converged state plus its view, ready to corrupt."""
    state = RoutingEngine(mini_view).converge(mini_view.node_of(50))
    return mini_view, state


def routed_non_origin(state):
    return next(
        node
        for node in range(len(state.cls))
        if state.has_route(node) and state.parent[node] >= 0
    )


def test_clean_state_passes(converged):
    view, state = converged
    check_route_state(view, state)


def test_detects_half_routed_node(converged):
    view, state = converged
    node = routed_non_origin(state)
    state.cls[node] = _NO_CLASS  # class gone, length/origin left behind
    with pytest.raises(InvariantViolation, match="shape"):
        check_route_state(view, state)


def test_detects_non_neighbor_parent(converged):
    view, state = converged
    node = routed_non_origin(state)
    strangers = [
        other
        for other in range(len(view))
        if other != node
        and other not in view.customers[node]
        and other not in view.peers[node]
        and other not in view.providers[node]
    ]
    state.parent[node] = strangers[0]
    with pytest.raises(InvariantViolation, match="parent-edge"):
        check_route_state(view, state)


def test_detects_length_drift(converged):
    """An off-by-one path length — the classic incremental-state bug —
    violates preference stability (the true shorter route is on offer)."""
    view, state = converged
    node = routed_non_origin(state)
    state.length[node] += 1
    with pytest.raises(InvariantViolation):
        check_route_state(view, state)


def test_detects_unreachable_marker_mismatch(converged):
    view, state = converged
    node = routed_non_origin(state)
    state.length[node] = UNREACHABLE
    with pytest.raises(InvariantViolation, match="shape"):
        check_route_state(view, state)


def test_detects_route_held_by_blocked_node(converged):
    """Declaring a routed node as blocked for the pass that produced the
    state is a contradiction the blocked-coherence check reports."""
    view, state = converged
    node = routed_non_origin(state)
    with pytest.raises(InvariantViolation):
        check_route_state(view, state, blocked={node})
