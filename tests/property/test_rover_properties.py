"""Property-based tests for ROVER's reverse-DNS naming convention."""

from hypothesis import given
from hypothesis import strategies as st

from repro.prefixes.prefix import Prefix
from repro.registry.rover import prefix_from_name, reverse_name

prefixes = st.builds(
    Prefix.from_host,
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=1, max_value=32),
)


@given(prefixes)
def test_name_round_trips(prefix):
    assert prefix_from_name(reverse_name(prefix)) == prefix


@given(prefixes, prefixes)
def test_names_are_injective(a, b):
    if a != b:
        assert reverse_name(a) != reverse_name(b)


@given(prefixes)
def test_label_shape(prefix):
    name = reverse_name(prefix)
    assert name[:2] == ("arpa", "in-addr")
    whole_octets, residual = divmod(prefix.length, 8)
    expected = 2 + whole_octets + (1 + residual if residual else 0)
    assert len(name) == expected
    assert ("m" in name) == bool(residual)


@given(prefixes)
def test_supernet_name_is_dns_ancestor_at_octet_boundaries(prefix):
    # For whole-octet prefixes, the /8 ancestor's name is a label-prefix of
    # the name — the property that lets ROVER validators walk up the tree.
    if prefix.length % 8 == 0 and prefix.length > 8:
        top = Prefix.from_host(prefix.network, 8)
        assert reverse_name(prefix)[: len(reverse_name(top))] == reverse_name(top)
