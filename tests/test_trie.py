"""Unit tests for the radix trie."""

import pytest

from repro.prefixes.prefix import Prefix
from repro.prefixes.trie import PrefixTrie


def p(text: str) -> Prefix:
    return Prefix.parse(text)


@pytest.fixture
def populated() -> PrefixTrie[str]:
    trie: PrefixTrie[str] = PrefixTrie()
    trie.insert(p("10.0.0.0/8"), "ten")
    trie.insert(p("10.1.0.0/16"), "ten-one")
    trie.insert(p("10.1.2.0/24"), "ten-one-two")
    trie.insert(p("192.168.0.0/16"), "private")
    return trie


class TestBasics:
    def test_insert_get(self, populated):
        assert populated.get(p("10.1.0.0/16")) == "ten-one"

    def test_get_missing_returns_default(self, populated):
        assert populated.get(p("11.0.0.0/8")) is None
        assert populated.get(p("11.0.0.0/8"), "x") == "x"

    def test_contains_is_exact_not_covering(self, populated):
        assert p("10.0.0.0/8") in populated
        assert p("10.2.0.0/16") not in populated  # covered but not stored

    def test_len_counts_values(self, populated):
        assert len(populated) == 4

    def test_replace_does_not_grow(self, populated):
        populated.insert(p("10.0.0.0/8"), "TEN")
        assert len(populated) == 4
        assert populated[p("10.0.0.0/8")] == "TEN"

    def test_getitem_raises_keyerror(self, populated):
        with pytest.raises(KeyError):
            populated[p("11.0.0.0/8")]

    def test_setitem(self, populated):
        populated[p("11.0.0.0/8")] = "eleven"
        assert populated[p("11.0.0.0/8")] == "eleven"

    def test_root_value(self):
        trie: PrefixTrie[str] = PrefixTrie()
        trie.insert(Prefix(0, 0), "default")
        assert trie[Prefix(0, 0)] == "default"
        assert trie.longest_match(12345)[1] == "default"

    def test_setdefault_installs_then_returns_existing(self, populated):
        legal = populated.setdefault(p("11.0.0.0/8"), "eleven")
        assert legal == "eleven"
        assert len(populated) == 5
        assert populated.setdefault(p("11.0.0.0/8"), "other") == "eleven"
        assert len(populated) == 5  # second call must not grow the trie

    def test_setdefault_mutable_accumulator(self):
        # the ingest RIB compiler's idiom: grow a legal-origin set in place
        trie: PrefixTrie[set[int]] = PrefixTrie()
        trie.setdefault(p("10.0.0.0/8"), set()).add(50)
        trie.setdefault(p("10.0.0.0/8"), set()).add(60)
        assert trie[p("10.0.0.0/8")] == {50, 60}
        assert len(trie) == 1


class TestRemoval:
    def test_remove_returns_value(self, populated):
        assert populated.remove(p("10.1.0.0/16")) == "ten-one"
        assert p("10.1.0.0/16") not in populated
        assert len(populated) == 3

    def test_remove_keeps_descendants(self, populated):
        populated.remove(p("10.1.0.0/16"))
        assert populated[p("10.1.2.0/24")] == "ten-one-two"

    def test_remove_missing_raises(self, populated):
        with pytest.raises(KeyError):
            populated.remove(p("10.2.0.0/16"))

    def test_clear(self, populated):
        populated.clear()
        assert len(populated) == 0
        assert list(populated.items()) == []


class TestLongestMatch:
    def test_picks_most_specific(self, populated):
        address = p("10.1.2.3/32").network
        match = populated.longest_match(address)
        assert match == (p("10.1.2.0/24"), "ten-one-two")

    def test_falls_back_to_covering(self, populated):
        address = p("10.9.0.0/32").network
        assert populated.longest_match(address) == (p("10.0.0.0/8"), "ten")

    def test_no_match(self, populated):
        assert populated.longest_match(p("11.0.0.1/32").network) is None

    def test_longest_match_prefix(self, populated):
        assert populated.longest_match_prefix(p("10.1.2.0/25")) == (
            p("10.1.2.0/24"), "ten-one-two",
        )
        assert populated.longest_match_prefix(p("10.1.0.0/16")) == (
            p("10.1.0.0/16"), "ten-one",
        )
        assert populated.longest_match_prefix(p("11.0.0.0/8")) is None


class TestWalks:
    def test_covering_shortest_first(self, populated):
        found = list(populated.covering(p("10.1.2.0/24")))
        assert [value for _, value in found] == ["ten", "ten-one", "ten-one-two"]

    def test_covered_by(self, populated):
        inside = list(populated.covered_by(p("10.0.0.0/8")))
        assert [value for _, value in inside] == ["ten", "ten-one", "ten-one-two"]

    def test_covered_by_missing_branch_is_empty(self, populated):
        assert list(populated.covered_by(p("11.0.0.0/8"))) == []

    def test_iter_covered_is_strict(self, populated):
        # Unlike covered_by, the query prefix itself is excluded.
        inside = list(populated.iter_covered(p("10.0.0.0/8")))
        assert [value for _, value in inside] == ["ten-one", "ten-one-two"]

    def test_iter_covered_sorted(self, populated):
        populated.insert(p("10.0.0.0/9"), "ten-low")
        keys = [prefix for prefix, _ in populated.iter_covered(p("10.0.0.0/8"))]
        assert keys == sorted(keys)

    def test_iter_covered_missing_branch_is_empty(self, populated):
        assert list(populated.iter_covered(p("11.0.0.0/8"))) == []

    def test_iter_covered_host_route_is_empty(self, populated):
        populated.insert(p("10.1.2.3/32"), "host")
        assert list(populated.iter_covered(p("10.1.2.3/32"))) == []

    def test_items_in_prefix_order(self, populated):
        keys = [prefix for prefix, _ in populated.items()]
        assert keys == sorted(keys)

    def test_iteration_yields_prefixes(self, populated):
        assert set(populated) == {
            p("10.0.0.0/8"), p("10.1.0.0/16"), p("10.1.2.0/24"), p("192.168.0.0/16"),
        }
