"""Unit tests for the miniature DNSSEC tree."""

import pytest

from repro.registry.dns import DnsTree, LookupStatus, format_name, parse_name


class TestNames:
    def test_parse_reverses_labels(self):
        assert parse_name("a.b.c") == ("c", "b", "a")

    def test_parse_root(self):
        assert parse_name(".") == ()
        assert parse_name("") == ()

    def test_parse_lowercases(self):
        assert parse_name("A.B") == ("b", "a")

    def test_parse_rejects_empty_label(self):
        with pytest.raises(ValueError):
            parse_name("a..b")

    def test_format_round_trip(self):
        assert format_name(parse_name("x.y.z")) == "x.y.z."
        assert format_name(()) == "."


@pytest.fixture
def tree() -> DnsTree:
    tree = DnsTree((), seed=3)
    tree.delegate((), ("arpa",))
    tree.delegate(("arpa",), ("arpa", "in-addr"))
    zone = tree.zone(("arpa", "in-addr"))
    zone.add_rrset(("arpa", "in-addr", "10"), "SRO", ["65001"])
    return tree


class TestLookup:
    def test_secure_lookup(self, tree):
        result = tree.lookup("10.in-addr.arpa", "SRO")
        assert result.status is LookupStatus.SECURE
        assert result.values == ("65001",)
        assert result.secure_values == ("65001",)

    def test_nodata_for_missing_name(self, tree):
        result = tree.lookup("99.in-addr.arpa", "SRO")
        assert result.status is LookupStatus.NODATA
        assert result.values == ()

    def test_nodata_for_missing_type(self, tree):
        assert tree.lookup("10.in-addr.arpa", "TXT").status is LookupStatus.NODATA

    def test_insecure_delegation(self, tree):
        tree.delegate(("arpa", "in-addr"), ("arpa", "in-addr", "99"), signed=False)
        tree.zone(("arpa", "in-addr", "99")).add_rrset(
            ("arpa", "in-addr", "99"), "SRO", ["64999"]
        )
        result = tree.lookup("99.in-addr.arpa", "SRO")
        assert result.status is LookupStatus.INSECURE
        assert result.values == ("64999",)
        assert result.secure_values == ()

    def test_bogus_on_tampered_rrset(self, tree):
        zone = tree.zone(("arpa", "in-addr"))
        rrset = zone.get(("arpa", "in-addr", "10"), "SRO")
        tampered = type(rrset)(
            name=rrset.name, rtype=rrset.rtype,
            values=("64999",), signature=rrset.signature,
        )
        zone._rrsets[(rrset.name, "SRO")] = tampered
        assert tree.lookup("10.in-addr.arpa", "SRO").status is LookupStatus.BOGUS

    def test_bogus_on_wrong_ds(self, tree):
        parent = tree.zone(("arpa",))
        ds = parent.get(("arpa", "in-addr"), "DS")
        forged = type(ds)(
            name=ds.name, rtype=ds.rtype,
            values=("deadbeefdeadbeef",), signature=ds.signature,
        )
        parent._rrsets[(ds.name, "DS")] = forged
        assert tree.lookup("10.in-addr.arpa", "SRO").status is LookupStatus.BOGUS


class TestZoneManagement:
    def test_delegation_requires_nesting(self, tree):
        with pytest.raises(ValueError):
            tree.delegate(("arpa", "in-addr"), ("com",))

    def test_duplicate_zone_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.delegate(("arpa",), ("arpa", "in-addr"))

    def test_rrset_must_be_inside_zone(self, tree):
        zone = tree.zone(("arpa", "in-addr"))
        with pytest.raises(ValueError):
            zone.add_rrset(("com", "x"), "SRO", ["1"])

    def test_remove_rrset(self, tree):
        zone = tree.zone(("arpa", "in-addr"))
        zone.remove_rrset(("arpa", "in-addr", "10"), "SRO")
        assert tree.lookup("10.in-addr.arpa", "SRO").status is LookupStatus.NODATA
