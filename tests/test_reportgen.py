"""Unit tests for EXPERIMENTS.md generation."""

from repro.experiments.config import ExperimentResult
from repro.experiments.reportgen import PAPER_REFERENCE, render_experiments_markdown


def make_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fig7",
        title="Detector configurations vs random attacks",
        summary={
            "attacks": 800,
            "tier1-17": {
                "missed": 270, "miss_rate": 0.3375,
                "mean_pollution": 400.0, "max_pollution": 1900,
            },
        },
        tables={"undetected": [{"attacker_asn": 5, "pollution_count": 900}]},
    )


class TestPaperReference:
    def test_every_suite_experiment_has_a_reference(self):
        expected = {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "tab1", "tab2", "tab3", "tab4", "tab5",
            "nz_rehoming", "nz_filter",
        }
        assert expected <= set(PAPER_REFERENCE)

    def test_references_have_claims(self):
        for experiment_id, reference in PAPER_REFERENCE.items():
            assert reference.get("claim"), experiment_id


class TestRendering:
    def test_contains_paper_claim_and_measurements(self):
        text = render_experiments_markdown([make_result()])
        assert "FIG7" in text
        assert "miss 34%" in text  # the paper claim
        assert "33.8%" in text or "33.7%" in text  # the measured rate
        assert "attacker_asn=5" in text

    def test_context_line(self):
        text = render_experiments_markdown([make_result()], context={"as_count": 4270})
        assert "as_count=4270" in text

    def test_unknown_experiment_still_renders(self):
        result = ExperimentResult(experiment_id="custom", title="X", summary={"k": 1})
        text = render_experiments_markdown([result])
        assert "CUSTOM" in text and "`k`: 1" in text
