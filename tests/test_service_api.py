"""The async shell: HTTP round-trips against a live ServiceThread.

One daemon per test class keeps the suite fast; every interaction goes
over real sockets through the stdlib HTTP client, exactly as the CI
smoke step and an operator's curl would.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.attacks.lab import HijackLab
from repro.detection.probes import custom_probes
from repro.obs.metrics import Metrics
from repro.service.api import ServiceThread
from repro.service.daemon import MonitorService
from tests.conftest import build_mini_graph


def _request(base_url, method, path, payload=None, raw=None):
    """One HTTP exchange; returns (status, decoded JSON body)."""
    if raw is not None:
        data = raw.encode("utf-8")
    elif payload is not None:
        data = json.dumps(payload).encode("utf-8")
    else:
        data = None
    request = urllib.request.Request(base_url + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def thread():
    lab = HijackLab(build_mini_graph(), seed=1)
    service = MonitorService(
        lab, shards=2, probes=custom_probes("pair", [10, 20]), metrics=Metrics()
    )
    thread = ServiceThread(service).start()
    yield thread
    thread.stop()


@pytest.fixture(scope="module")
def api(thread):
    def call(method, path, payload=None, raw=None):
        return _request(thread.base_url, method, path, payload=payload, raw=raw)

    return call


def announce(at, prefix, origin):
    return json.dumps(
        {"kind": "announce", "at": at, "prefix": prefix, "origin": origin}
    )


class TestLifecycle:
    def test_health_before_traffic(self, api):
        status, health = api("GET", "/health")
        assert status == 200
        assert health["status"] == "ok"
        assert health["shards"] == 2

    def test_register_then_hijack_then_verdict(self, api):
        status, registration = api(
            "POST", "/tenants/acme/prefixes",
            payload={"prefix": "10.0.0.0/16", "origin": 50, "auto_mitigate": True},
        )
        assert status == 200
        assert registration["tenant"] == "acme"

        lines = "\n".join([
            announce(0.0, "10.0.0.0/16", 50),
            "this line is garbage",
            announce(1.0, "10.0.0.0/17", 60),
        ])
        status, outcome = api("POST", "/events", raw=lines)
        assert status == 200
        assert outcome["accepted"] == 2
        assert outcome["malformed"] == 1
        verdicts = outcome["verdicts"]
        assert [(v["tenant"], v["verdict"], v["confirmed"]) for v in verdicts] == [
            ("acme", "hijack", True)
        ]

    def test_stats_and_mitigations_after_hijack(self, api):
        status, stats = api("GET", "/tenants/acme/stats")
        assert status == 200
        assert stats["latency"]["count"] == 1
        assert stats["verdicts"] == 1

        status, body = api("GET", "/mitigations")
        assert status == 200
        records = body["mitigations"]
        assert len(records) == 1
        assert records[0]["coverage_after"] > records[0]["coverage_before"]

    def test_health_reflects_counters(self, api):
        _status, health = api("GET", "/health")
        assert health["events"]["malformed"] == 1
        assert health["verdicts"] >= 1
        assert health["mitigations"] == 1

    def test_tenant_scoped_verdicts(self, api):
        _status, body = api("GET", "/tenants/acme/verdicts")
        assert [v["tenant"] for v in body["verdicts"]] == ["acme"]
        _status, body = api("GET", "/tenants/nobody/verdicts")
        assert body["verdicts"] == []

    def test_tenants_listing(self, api):
        _status, body = api("GET", "/tenants")
        assert [t["tenant"] for t in body["tenants"]] == ["acme"]

    def test_metrics_snapshot(self, api):
        status, snapshot = api("GET", "/metrics")
        assert status == 200
        assert snapshot["counters"]["service.verdicts"] >= 1

    def test_flush_with_nothing_pending(self, api):
        status, body = api("POST", "/flush")
        assert status == 200 and body["verdicts"] == []

    def test_deregister(self, api):
        api("POST", "/tenants/temp/prefixes",
            payload={"prefix": "192.168.0.0/16", "origin": 70})
        status, dropped = api(
            "POST", "/tenants/temp/deregister",
            payload={"prefix": "192.168.0.0/16"},
        )
        assert status == 200
        assert dropped["prefix"] == "192.168.0.0/16"


class TestErrors:
    def test_unknown_path_is_404(self, api):
        status, body = api("GET", "/nope")
        assert status == 404 and "error" in body

    def test_unknown_method_is_405(self, api):
        status, _body = api("PUT", "/health")
        assert status == 405

    def test_bad_json_body_is_400(self, api):
        status, body = api("POST", "/tenants/acme/prefixes", raw="{not json")
        assert status == 400 and "invalid JSON" in body["error"]

    def test_missing_field_is_400(self, api):
        status, body = api("POST", "/tenants/acme/prefixes", payload={"origin": 50})
        assert status == 400 and "prefix" in body["error"]

    def test_bad_prefix_is_400(self, api):
        status, _body = api(
            "POST", "/tenants/acme/prefixes",
            payload={"prefix": "not-a-prefix", "origin": 50},
        )
        assert status == 400

    def test_unknown_origin_is_400(self, api):
        status, body = api(
            "POST", "/tenants/acme/prefixes",
            payload={"prefix": "172.16.0.0/12", "origin": 999999},
        )
        assert status == 400 and "unknown origin" in body["error"]


class TestShutdownEndpoint:
    def test_post_shutdown_stops_the_daemon(self):
        lab = HijackLab(build_mini_graph(), seed=1)
        service = MonitorService(lab, probes=custom_probes("pair", [10, 20]))
        thread = ServiceThread(service).start()
        status, body = _request(thread.base_url, "POST", "/shutdown")
        assert status == 200 and body["status"] == "stopping"
        thread._thread.join(timeout=30)
        assert not thread._thread.is_alive()
