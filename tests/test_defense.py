"""Unit tests for deployment strategies and the Defense bundle."""

import pytest

from repro.defense.deployment import Defense, FilterRule
from repro.defense.strategies import (
    custom_deployment,
    degree_threshold_deployment,
    no_deployment,
    paper_ladder,
    random_deployment,
    tier1_deployment,
    top_degree_deployment,
)
from repro.prefixes.prefix import Prefix
from repro.registry.roa import RoaTable, RouteOriginAuthorization
from repro.topology.classify import transit_asns


class TestStrategies:
    def test_no_deployment_empty(self):
        assert len(no_deployment()) == 0

    def test_random_deployment_from_transit_pool(self, medium_graph):
        strategy = random_deployment(medium_graph, 10, seed=1)
        assert len(strategy) == 10
        assert strategy.deployers <= transit_asns(medium_graph)

    def test_random_deployment_deterministic(self, medium_graph):
        a = random_deployment(medium_graph, 10, seed=1)
        b = random_deployment(medium_graph, 10, seed=1)
        c = random_deployment(medium_graph, 10, seed=2)
        assert a.deployers == b.deployers
        assert a.deployers != c.deployers

    def test_random_deployment_pool_exhausted(self, medium_graph):
        with pytest.raises(ValueError):
            random_deployment(medium_graph, 10 ** 6)

    def test_tier1_deployment(self, mini_graph):
        strategy = tier1_deployment(mini_graph)
        assert strategy.deployers == frozenset({1, 2})
        assert 1 in strategy

    def test_top_degree_deployment(self, medium_graph):
        strategy = top_degree_deployment(medium_graph, 20)
        assert len(strategy) == 20
        cutoff = min(medium_graph.degree(asn) for asn in strategy.deployers)
        outside = max(
            medium_graph.degree(asn)
            for asn in medium_graph.asns()
            if asn not in strategy.deployers
        )
        assert cutoff >= outside

    def test_degree_threshold_deployment(self, medium_graph):
        strategy = degree_threshold_deployment(medium_graph, 20)
        assert all(medium_graph.degree(asn) >= 20 for asn in strategy.deployers)

    def test_custom_deployment(self):
        strategy = custom_deployment("mine", [5, 6])
        assert strategy.name == "mine" and strategy.deployers == frozenset({5, 6})

    def test_paper_ladder_shape(self, medium_graph):
        ladder = paper_ladder(medium_graph)
        names = [strategy.name for strategy in ladder]
        assert names[0] == "baseline"
        assert names[1].startswith("random-") and names[2].startswith("random-")
        assert names[3].startswith("tier1-")
        assert names[4:] == ["core-62", "core-124", "core-166", "core-299"]
        # Larger tiers contain the smaller ones.
        assert ladder[4].deployers <= ladder[5].deployers <= ladder[6].deployers


class TestFilterRule:
    def test_rejects_foreign_origin_inside_block(self):
        rule = FilterRule(1, Prefix.parse("10.0.0.0/8"), frozenset({65001}))
        assert rule.rejects(Prefix.parse("10.1.0.0/16"), 64999)
        assert not rule.rejects(Prefix.parse("10.1.0.0/16"), 65001)
        assert not rule.rejects(Prefix.parse("11.0.0.0/8"), 64999)


class TestDefense:
    @pytest.fixture
    def authority(self) -> RoaTable:
        return RoaTable([RouteOriginAuthorization(Prefix.parse("10.0.0.0/16"), 65001)])

    def test_no_authority_blocks_nothing(self):
        defense = Defense(strategy=custom_deployment("d", [1, 2]))
        assert defense.blocking_asns(Prefix.parse("10.0.0.0/16"), 64999) == frozenset()

    def test_invalid_announcement_blocked_at_deployers(self, authority):
        defense = Defense(strategy=custom_deployment("d", [1, 2]), authority=authority)
        blockers = defense.blocking_asns(Prefix.parse("10.0.0.0/16"), 64999)
        assert blockers == frozenset({1, 2})

    def test_valid_announcement_not_blocked(self, authority):
        defense = Defense(strategy=custom_deployment("d", [1, 2]), authority=authority)
        assert defense.blocking_asns(Prefix.parse("10.0.0.0/16"), 65001) == frozenset()

    def test_not_found_announcement_not_blocked(self, authority):
        defense = Defense(strategy=custom_deployment("d", [1, 2]), authority=authority)
        assert defense.blocking_asns(Prefix.parse("99.0.0.0/16"), 64999) == frozenset()

    def test_manual_filters_block_independently(self, authority):
        rule = FilterRule(7, Prefix.parse("10.0.0.0/16"), frozenset({65001}))
        defense = Defense(manual_filters=(rule,))
        assert defense.blocking_asns(Prefix.parse("10.0.0.0/16"), 64999) == frozenset({7})

    def test_with_filters_returns_extended_copy(self, authority):
        base = Defense(authority=authority)
        rule = FilterRule(7, Prefix.parse("10.0.0.0/16"), frozenset({65001}))
        extended = base.with_filters(rule)
        assert extended.manual_filters == (rule,)
        assert base.manual_filters == ()

    def test_blocking_nodes_maps_to_view(self, mini_graph, mini_view, authority):
        defense = Defense(strategy=custom_deployment("d", [10, 999]), authority=authority)
        nodes = defense.blocking_nodes(mini_view, Prefix.parse("10.0.0.0/16"), 64999)
        assert nodes == frozenset({mini_view.node_of(10)})

    def test_validator_drops_invalid_at_deployer_only(self, mini_view, authority):
        from repro.bgp.routes import Route
        from repro.topology.relationships import RouteClass

        defense = Defense(strategy=custom_deployment("d", [10]), authority=authority)
        validator = defense.validator(mini_view)
        bogus_origin = mini_view.node_of(60)
        route = Route(Prefix.parse("10.0.0.0/16"), RouteClass.ORIGIN, (), bogus_origin)
        candidate = route.extend(bogus_origin, RouteClass.CUSTOMER)
        assert validator(mini_view.node_of(10), candidate)
        assert not validator(mini_view.node_of(20), candidate)
