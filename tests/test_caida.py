"""Unit tests for CAIDA AS-relationship file I/O."""

import gzip

import pytest

from repro.topology.caida import (
    CaidaFormatError,
    dump_caida,
    dumps_caida,
    load_caida,
    load_caida_mmap,
    loads_caida,
)
from repro.topology.relationships import Relationship

SAMPLE = """# serial-1 sample
1|2|0
1|10|-1
2|20|-1
10|30|-1
30|31|1
"""


class TestParsing:
    def test_loads_basic(self):
        graph = loads_caida(SAMPLE)
        assert len(graph) == 6
        assert graph.relationship(1, 2) is Relationship.PEER
        assert graph.relationship(1, 10) is Relationship.CUSTOMER
        assert graph.relationship(10, 1) is Relationship.PROVIDER
        assert graph.relationship(30, 31) is Relationship.SIBLING

    def test_comments_and_blank_lines_skipped(self):
        graph = loads_caida("# hi\n\n1|2|0\n")
        assert graph.edge_count() == 1

    def test_serial2_source_column(self):
        graph = loads_caida("1|2|-1|bgp\n")
        assert graph.relationship(1, 2) is Relationship.CUSTOMER

    @pytest.mark.parametrize("line", ["1|2", "1|2|9", "a|2|0", "1|2|0|x|y"])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(CaidaFormatError):
            loads_caida(line)

    def test_conflicting_records_strict(self):
        text = "1|2|0\n1|2|-1\n"
        with pytest.raises(Exception):
            loads_caida(text, strict=True)
        graph = loads_caida(text, strict=False)
        assert graph.relationship(1, 2) is Relationship.PEER  # first wins


class TestRoundTrip:
    def test_dump_load_preserves_graph(self, mini_graph):
        text = dumps_caida(mini_graph)
        restored = loads_caida(text)
        assert restored.asns() == mini_graph.asns()
        assert restored.edge_count() == mini_graph.edge_count()
        for a, b, rel in mini_graph.edges():
            assert restored.relationship(a, b) is rel

    def test_serial2_emits_source(self, mini_graph):
        text = dumps_caida(mini_graph, serial=2, source="unit")
        data_lines = [line for line in text.splitlines() if not line.startswith("#")]
        assert all(line.endswith("|unit") for line in data_lines)
        restored = loads_caida(text)
        assert restored.edge_count() == mini_graph.edge_count()

    def test_unsupported_serial(self, mini_graph):
        with pytest.raises(ValueError):
            dumps_caida(mini_graph, serial=3)

    def test_file_round_trip(self, mini_graph, tmp_path):
        path = tmp_path / "topo.txt"
        dump_caida(mini_graph, path)
        assert load_caida(path).edge_count() == mini_graph.edge_count()

    def test_gzip_round_trip(self, mini_graph, tmp_path):
        path = tmp_path / "topo.txt.gz"
        dump_caida(mini_graph, path)
        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("#")
        assert load_caida(path).edge_count() == mini_graph.edge_count()

    def test_sibling_round_trip(self):
        graph = loads_caida("5|6|1\n")
        assert loads_caida(dumps_caida(graph)).relationship(5, 6) is Relationship.SIBLING


class TestMmapLoader:
    """load_caida_mmap must agree with load_caida on every input shape."""

    def _assert_same(self, mini_graph, path):
        mapped = load_caida_mmap(path)
        direct = load_caida(path)
        assert mapped.asns() == direct.asns() == mini_graph.asns()
        assert mapped.edge_count() == direct.edge_count()
        for a, b, rel in direct.edges():
            assert mapped.relationship(a, b) is rel

    def test_plain_file(self, mini_graph, tmp_path):
        path = tmp_path / "topo.txt"
        dump_caida(mini_graph, path)
        self._assert_same(mini_graph, path)

    def test_gzip_fallback(self, mini_graph, tmp_path):
        path = tmp_path / "topo.txt.gz"
        dump_caida(mini_graph, path)
        self._assert_same(mini_graph, path)

    def test_no_trailing_newline(self, tmp_path):
        path = tmp_path / "topo.txt"
        path.write_text("1|2|0\n1|10|-1", encoding="ascii")  # no final \n
        assert load_caida_mmap(path).edge_count() == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "topo.txt"
        path.write_text("", encoding="ascii")
        assert len(load_caida_mmap(path)) == 0

    def test_strict_errors_still_carry_line_numbers(self, tmp_path):
        path = tmp_path / "topo.txt"
        path.write_text("1|2|0\n1|2\n", encoding="ascii")
        with pytest.raises(CaidaFormatError, match="line 2"):
            load_caida_mmap(path)
