"""Unit tests for the address-space allocator."""

import pytest

from repro.prefixes.addressing import AddressPlan, AllocationError
from repro.prefixes.prefix import Prefix


@pytest.fixture
def plan() -> AddressPlan:
    weights = {asn: float(asn) for asn in range(1, 40)}
    return AddressPlan.build(weights, seed=3)


class TestBuild:
    def test_every_as_gets_a_prefix(self, plan):
        for asn in range(1, 40):
            assert plan.prefixes_of(asn), f"AS{asn} missing allocation"

    def test_allocations_are_disjoint(self, plan):
        allocations = [prefix for prefix, _ in plan.items()]
        for index, a in enumerate(allocations):
            for b in allocations[index + 1:]:
                assert not a.overlaps(b), f"{a} overlaps {b}"

    def test_heavier_weight_gets_more_space(self, plan):
        assert plan.address_space_of(39) > plan.address_space_of(1)

    def test_deterministic_for_seed(self):
        weights = {asn: 1.0 for asn in range(1, 20)}
        first = AddressPlan.build(weights, seed=5)
        second = AddressPlan.build(weights, seed=5)
        assert list(first.items()) == list(second.items())

    def test_loopback_never_allocated(self):
        weights = {asn: 1000.0 for asn in range(1, 300)}
        plan = AddressPlan.build(weights, seed=0)
        loopback = Prefix.parse("127.0.0.0/8")
        for prefix, _asn in plan.items():
            assert not loopback.overlaps(prefix)

    def test_empty_weights(self):
        plan = AddressPlan.build({})
        assert len(plan) == 0
        assert plan.total_allocated() == 0


class TestQueries:
    def test_origin_of_allocated_space(self, plan):
        prefix = plan.primary_prefix(10)
        assert plan.origin_of(prefix) == 10
        sub = next(prefix.subnets())
        assert plan.origin_of(sub) == 10

    def test_origin_of_unallocated_space(self, plan):
        assert plan.origin_of(Prefix.parse("223.255.255.0/24")) is None

    def test_primary_prefix_is_largest(self, plan):
        for asn in (5, 20, 39):
            primary = plan.primary_prefix(asn)
            assert all(
                primary.length <= other.length for other in plan.prefixes_of(asn)
            )

    def test_primary_prefix_unknown_as(self, plan):
        with pytest.raises(KeyError):
            plan.primary_prefix(999)

    def test_fraction_owned_sums_to_one(self, plan):
        assert plan.fraction_owned(plan.all_asns()) == pytest.approx(1.0)

    def test_fraction_owned_empty(self, plan):
        assert plan.fraction_owned([]) == 0.0

    def test_fraction_owned_dedupes(self, plan):
        once = plan.fraction_owned([10])
        twice = plan.fraction_owned([10, 10])
        assert once == twice

    def test_contains(self, plan):
        assert 10 in plan
        assert 999 not in plan


class TestAssign:
    def test_assign_rejects_overlap(self):
        plan = AddressPlan()
        plan.assign(1, Prefix.parse("10.0.0.0/8"))
        with pytest.raises(AllocationError):
            plan.assign(2, Prefix.parse("10.1.0.0/16"))
        with pytest.raises(AllocationError):
            plan.assign(2, Prefix.parse("0.0.0.0/1"))

    def test_assign_tracks_totals(self):
        plan = AddressPlan()
        plan.assign(1, Prefix.parse("10.0.0.0/8"))
        plan.assign(1, Prefix.parse("11.0.0.0/16"))
        assert plan.address_space_of(1) == (1 << 24) + (1 << 16)
        assert len(plan) == 2
