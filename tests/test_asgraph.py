"""Unit tests for the AS graph and relationship types."""

import pytest

from repro.topology.asgraph import ASGraph, TopologyError
from repro.topology.relationships import Relationship, RouteClass


class TestRelationshipEnum:
    def test_inverse_of_p2c(self):
        assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER

    def test_symmetric_relationships_self_inverse(self):
        assert Relationship.PEER.inverse() is Relationship.PEER
        assert Relationship.SIBLING.inverse() is Relationship.SIBLING

    def test_route_class_preference_order(self):
        assert RouteClass.ORIGIN < RouteClass.CUSTOMER < RouteClass.PEER < RouteClass.PROVIDER

    def test_route_class_from_relationship(self):
        assert RouteClass.from_relationship(Relationship.CUSTOMER) is RouteClass.CUSTOMER
        assert RouteClass.from_relationship(Relationship.PEER) is RouteClass.PEER
        assert RouteClass.from_relationship(Relationship.PROVIDER) is RouteClass.PROVIDER
        with pytest.raises(ValueError):
            RouteClass.from_relationship(Relationship.SIBLING)


class TestNodes:
    def test_add_and_contains(self):
        graph = ASGraph()
        graph.add_as(7, region="eu")
        assert 7 in graph and 8 not in graph
        assert graph.region_of(7) == "eu"

    def test_add_as_idempotent_updates_metadata(self):
        graph = ASGraph()
        graph.add_as(7)
        graph.add_as(7, region="eu", tier1=True)
        assert graph.region_of(7) == "eu"
        assert graph.is_marked_tier1(7)

    def test_asns_sorted(self):
        graph = ASGraph()
        for asn in (5, 1, 9):
            graph.add_as(asn)
        assert graph.asns() == [1, 5, 9]

    def test_regions_mapping(self):
        graph = ASGraph()
        graph.add_as(1, region="a")
        graph.add_as(2, region="a")
        graph.add_as(3, region="b")
        graph.add_as(4)
        assert graph.regions() == {"a": [1, 2], "b": [3]}

    def test_unknown_as_raises(self):
        graph = ASGraph()
        with pytest.raises(TopologyError):
            graph.providers(1)


class TestEdges:
    @pytest.fixture
    def pair(self) -> ASGraph:
        graph = ASGraph()
        graph.add_as(1)
        graph.add_as(2)
        return graph

    def test_customer_link_both_views(self, pair):
        pair.add_relationship(1, 2, Relationship.CUSTOMER)
        assert 2 in pair.customers(1)
        assert 1 in pair.providers(2)
        assert pair.relationship(1, 2) is Relationship.CUSTOMER
        assert pair.relationship(2, 1) is Relationship.PROVIDER

    def test_provider_direction_inverts(self, pair):
        pair.add_relationship(1, 2, Relationship.PROVIDER)
        assert 1 in pair.customers(2)

    def test_peer_symmetric(self, pair):
        pair.add_relationship(1, 2, Relationship.PEER)
        assert 2 in pair.peers(1) and 1 in pair.peers(2)

    def test_conflicting_relationship_rejected(self, pair):
        pair.add_relationship(1, 2, Relationship.CUSTOMER)
        with pytest.raises(TopologyError):
            pair.add_relationship(1, 2, Relationship.PEER)

    def test_duplicate_same_relationship_is_noop(self, pair):
        pair.add_relationship(1, 2, Relationship.PEER)
        pair.add_relationship(2, 1, Relationship.PEER)
        assert pair.degree(1) == 1

    def test_self_link_rejected(self, pair):
        with pytest.raises(TopologyError):
            pair.add_relationship(1, 1, Relationship.PEER)

    def test_remove_relationship(self, pair):
        pair.add_relationship(1, 2, Relationship.CUSTOMER)
        pair.remove_relationship(1, 2)
        assert pair.relationship(1, 2) is None
        assert pair.degree(1) == 0

    def test_remove_missing_raises(self, pair):
        with pytest.raises(TopologyError):
            pair.remove_relationship(1, 2)

    def test_edge_count_and_edges(self, mini_graph):
        edges = list(mini_graph.edges())
        assert len(edges) == mini_graph.edge_count()
        # Each undirected link appears exactly once.
        seen = {frozenset((a, b)) for a, b, _rel in edges}
        assert len(seen) == len(edges)

    def test_degree(self, mini_graph):
        assert mini_graph.degree(10) == 4  # provider 1, peer 20, customers 30, 80


class TestMutation:
    def test_rehome(self, mini_graph):
        mini_graph.rehome(50, 30, 10)
        assert 10 in mini_graph.providers(50)
        assert 30 not in mini_graph.providers(50)

    def test_rehome_requires_existing_provider(self, mini_graph):
        with pytest.raises(TopologyError):
            mini_graph.rehome(50, 40, 10)

    def test_multihome(self, mini_graph):
        mini_graph.multihome(50, 40)
        assert mini_graph.providers(50) == frozenset({30, 40})

    def test_copy_is_independent(self, mini_graph):
        clone = mini_graph.copy()
        clone.remove_relationship(30, 50)
        assert mini_graph.relationship(30, 50) is not None

    def test_subgraph_keeps_internal_links_only(self, mini_graph):
        sub = mini_graph.subgraph([1, 10, 30])
        assert len(sub) == 3
        assert sub.relationship(1, 10) is Relationship.CUSTOMER
        assert sub.relationship(10, 30) is Relationship.CUSTOMER
        assert 20 not in sub

    def test_validate_passes_on_consistent_graph(self, mini_graph):
        mini_graph.validate()

    def test_to_networkx(self, mini_graph):
        nx_graph = mini_graph.to_networkx()
        assert nx_graph.number_of_nodes() == len(mini_graph)
        assert nx_graph.number_of_edges() == mini_graph.edge_count()
        assert nx_graph.edges[1, 10]["relationship"] == "customer"
