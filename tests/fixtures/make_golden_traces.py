#!/usr/bin/env python
"""Regenerate the committed golden ingest fixtures.

The golden trace is the ingest layer's end-to-end contract
(``docs/ingestion.md``): a CAIDA-format topology export of the
hand-verifiable mini graph, a strict-clean RIB dump, an update feed
mixing benign churn with an origin hijack, a forged-path (type-1)
hijack and a sub-prefix hijack, and the monitor report the CLI produces
for them — pinned byte-for-byte by ``tests/test_ingest.py``.

Everything here is deterministic (no RNG, no clocks): timestamps are
hand-placed virtual seconds and prefixes come from the lab's addressing
plan for the exported topology. Regenerate in place after an
intentional behavior change with::

    PYTHONPATH=src:. python tests/fixtures/make_golden_traces.py

and re-run ``pytest tests/test_ingest.py`` to confirm the new pin.
"""

from __future__ import annotations

from pathlib import Path

FIXTURES_DIR = Path(__file__).resolve().parent

GOLDEN_TOPOLOGY = "golden_topology.txt"
GOLDEN_RIB = "golden_rib.jsonl"
GOLDEN_UPDATES = "golden_updates.jsonl"
GOLDEN_REPORT = "golden_report.json"


def write_fixtures(directory: Path) -> dict[str, Path]:
    """Write the four golden files into *directory*; returns their paths."""
    from repro.attacks.lab import HijackLab
    from repro.cli import main as cli_main
    from repro.ingest import TraceRecord, format_record
    from repro.topology.caida import dumps_caida, load_caida

    from tests.conftest import build_mini_graph

    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        name: directory / name
        for name in (GOLDEN_TOPOLOGY, GOLDEN_RIB, GOLDEN_UPDATES, GOLDEN_REPORT)
    }

    # Topology: the mini graph, round-tripped through the CAIDA format so
    # the script sees exactly the graph the CLI will memory-map back in.
    paths[GOLDEN_TOPOLOGY].write_text(
        dumps_caida(build_mini_graph()), encoding="ascii"
    )
    graph = load_caida(paths[GOLDEN_TOPOLOGY])
    lab = HijackLab(graph, seed=2014)
    prefix = {asn: str(lab.plan.primary_prefix(asn)) for asn in (50, 60, 70, 80)}
    # First half of AS 80's block — covered by 80's ROA but longer than
    # its max-length, so the monitor flags the sub-prefix announcement.
    subprefix = str(next(lab.plan.primary_prefix(80).subnets()))

    # RIB dump: one entry per (peer, prefix) as collectors export them —
    # propagation paths peer-first, true origin last. Strict-clean.
    rib = [
        TraceRecord("rib", 0.0, 1, prefix[50], (1, 10, 30, 50)),
        TraceRecord("rib", 0.0, 1, prefix[60], (1, 2, 20, 40, 60)),
        TraceRecord("rib", 0.1, 1, prefix[70], (1, 70)),
        TraceRecord("rib", 0.1, 1, prefix[80], (1, 10, 80)),
        TraceRecord("rib", 0.2, 2, prefix[50], (2, 1, 10, 30, 50)),
        TraceRecord("rib", 0.2, 2, prefix[60], (2, 20, 40, 60)),
        TraceRecord("rib", 0.3, 2, prefix[80], (2, 20, 80)),
    ]
    paths[GOLDEN_RIB].write_text(
        "".join(format_record(record) + "\n" for record in rib),
        encoding="utf-8",
    )

    # Update feed: announce paths are the claim as it left the announcer
    # (announcer first, claimed origin last; single-element = honest).
    updates = [
        # benign re-announce of AS 50's own block (converges to a no-op)
        TraceRecord("announce", 10.0, 1, prefix[50], (50,)),
        # type-0 origin hijack: AS 60 claims AS 50's block outright
        TraceRecord("announce", 20.0, 1, prefix[50], (60,)),
        # type-1 forged path: AS 70 prepends itself to the victim AS 60
        TraceRecord("announce", 30.0, 2, prefix[60], (70, 60)),
        # the origin hijack is withdrawn again
        TraceRecord("withdraw", 40.0, 1, prefix[50], (60,)),
        # sub-prefix hijack: AS 60 claims half of AS 80's block
        TraceRecord("announce", 50.0, 2, subprefix, (60,)),
        # the forged-path announcement is withdrawn by its announcer
        TraceRecord("withdraw", 60.0, 2, prefix[60], (70,)),
    ]
    lines = [format_record(record) for record in updates]
    # Two records ride as TSV so the golden path covers the per-line
    # encoding auto-detection, not just pure JSONL feeds.
    lines[2] = format_record(updates[2], encoding="tsv")
    lines[4] = format_record(updates[4], encoding="tsv")
    paths[GOLDEN_UPDATES].write_text(
        "".join(line + "\n" for line in lines), encoding="utf-8"
    )

    # The pinned report is produced by the CLI itself, so the snapshot
    # test's byte-for-byte comparison covers the whole command path.
    exit_code = cli_main([
        "ingest",
        "--topology", str(paths[GOLDEN_TOPOLOGY]),
        "--rib", str(paths[GOLDEN_RIB]),
        "--updates", str(paths[GOLDEN_UPDATES]),
        "--strict",
        "--seed-roas",
        "--report", str(paths[GOLDEN_REPORT]),
    ])
    if exit_code != 0:
        raise RuntimeError(f"golden ingest run failed with exit code {exit_code}")
    return paths


if __name__ == "__main__":
    import sys

    repo_root = FIXTURES_DIR.parent.parent
    for entry in (str(repo_root / "src"), str(repo_root)):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    for path in write_fixtures(FIXTURES_DIR).values():
        print(f"wrote {path}")
