"""Unit tests for the util package: RNG streams, CCDF, tables."""

import pytest

from repro.util.ccdf import ccdf, describe
from repro.util.rng import derive_seed, make_rng
from repro.util.tables import render_table


class TestRng:
    def test_same_labels_same_stream(self):
        assert make_rng(1, "x").random() == make_rng(1, "x").random()

    def test_different_labels_different_streams(self):
        assert make_rng(1, "x").random() != make_rng(1, "y").random()

    def test_different_seeds_different_streams(self):
        assert make_rng(1, "x").random() != make_rng(2, "x").random()

    def test_derive_seed_is_stable_value(self):
        # Pinned: catches accidental changes to the derivation scheme,
        # which would silently re-randomize every experiment.
        assert derive_seed(2014, "topology") == derive_seed(2014, "topology")
        assert derive_seed(0) != derive_seed(1)

    def test_label_separator_prevents_concatenation_collisions(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")


class TestCcdf:
    def test_simple_curve(self):
        curve = ccdf([3, 1, 3, 7])
        assert curve.points() == ((1, 4), (3, 3), (7, 1))

    def test_count_at_least(self):
        curve = ccdf([0, 5, 10, 10, 20])
        assert curve.count_at_least(0) == 5
        assert curve.count_at_least(5) == 4
        assert curve.count_at_least(6) == 3
        assert curve.count_at_least(10) == 3
        assert curve.count_at_least(11) == 1
        assert curve.count_at_least(21) == 0

    def test_counts_strictly_decreasing(self):
        curve = ccdf([1, 1, 2, 3, 5, 8, 8])
        assert list(curve.counts) == sorted(curve.counts, reverse=True)
        assert len(set(curve.counts)) == len(curve.counts)

    def test_empty(self):
        curve = ccdf([])
        assert curve.points() == ()
        assert curve.total == 0
        assert curve.count_at_least(1) == 0

    def test_area_equals_sum(self):
        samples = [4, 9, 0, 2, 7]
        assert ccdf(samples).area() == sum(samples)


class TestDescribe:
    def test_mean_over_successful_only(self):
        summary = describe([0, 0, 10, 20])
        assert summary.count == 4
        assert summary.successful == 2
        assert summary.mean == 7.5
        assert summary.mean_successful == 15.0
        assert summary.maximum == 20

    def test_empty(self):
        summary = describe([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_as_dict_round_trip(self):
        data = describe([1, 2, 3]).as_dict()
        assert data["count"] == 3
        assert data["maximum"] == 3


class TestRenderTable:
    def test_alignment_and_header_rule(self):
        text = render_table(("a", "bb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].split() == ["1", "2"]
        assert lines[3].split() == ["333", "4"]

    def test_title(self):
        text = render_table(("x",), [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_floats_formatted(self):
        text = render_table(("x",), [(1.2345,)])
        assert "1.2" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [(1,)])
