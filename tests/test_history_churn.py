"""Unit tests for historical origin data and the churn study."""

import pytest

from repro.core.churn import TransferEvent, sample_transfers, stale_history_study
from repro.defense.strategies import custom_deployment
from repro.prefixes.prefix import Prefix
from repro.registry.history import HistoricalAuthority
from repro.registry.publication import PublicationState
from repro.registry.roa import ValidationState


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestHistoricalAuthority:
    @pytest.fixture
    def history(self) -> HistoricalAuthority:
        history = HistoricalAuthority()
        history.observe(p("10.0.0.0/16"), 65001)
        history.observe(p("10.1.0.0/16"), 65002)
        return history

    def test_known_origin_valid(self, history):
        assert history.validate(p("10.0.0.0/16"), 65001) is ValidationState.VALID

    def test_contradicting_origin_invalid(self, history):
        assert history.validate(p("10.0.0.0/16"), 64999) is ValidationState.INVALID

    def test_subprefix_of_observed_space_judged(self, history):
        # History covers the /16, so a /17 announcement is judged by it.
        assert history.validate(p("10.0.0.0/17"), 65001) is ValidationState.VALID
        assert history.validate(p("10.0.0.0/17"), 64999) is ValidationState.INVALID

    def test_never_observed_space_not_found(self, history):
        assert history.validate(p("99.0.0.0/8"), 65001) is ValidationState.NOT_FOUND

    def test_multiple_observed_origins_all_valid(self, history):
        history.observe(p("10.0.0.0/16"), 65077)
        assert history.validate(p("10.0.0.0/16"), 65077) is ValidationState.VALID
        assert history.validate(p("10.0.0.0/16"), 65001) is ValidationState.VALID

    def test_forget(self, history):
        history.forget(p("10.0.0.0/16"), 65001)
        assert history.validate(p("10.0.0.0/16"), 65001) is ValidationState.NOT_FOUND
        with pytest.raises(KeyError):
            history.forget(p("10.0.0.0/16"), 65001)

    def test_from_plan_covers_all_allocations(self, medium_lab):
        history = HistoricalAuthority.from_plan(medium_lab.plan)
        for asn in list(medium_lab.plan.all_asns())[:20]:
            prefix = medium_lab.plan.primary_prefix(asn)
            assert history.validate(prefix, asn) is ValidationState.VALID

    def test_len_counts_prefixes(self, history):
        assert len(history) == 2


class TestPlanTransfer:
    def test_transfer_moves_ownership(self, medium_lab):
        plan = medium_lab.plan
        import copy

        # Work on a throwaway plan to keep the shared fixture pristine.
        scratch = copy.deepcopy(plan)
        owner = scratch.all_asns()[0]
        other = scratch.all_asns()[1]
        prefix = scratch.primary_prefix(owner)
        old = scratch.transfer(prefix, other)
        assert old == owner
        assert scratch.origin_of(prefix) == other
        assert prefix in scratch.prefixes_of(other)
        assert prefix not in scratch.prefixes_of(owner)

    def test_transfer_unallocated_rejected(self, medium_lab):
        import copy

        scratch = copy.deepcopy(medium_lab.plan)
        with pytest.raises(KeyError):
            scratch.transfer(p("223.255.255.0/24"), 1)


class TestStaleHistoryStudy:
    @pytest.fixture(scope="class")
    def events(self, medium_lab):
        return sample_transfers(medium_lab, 8, seed=3)

    def test_sample_transfers_shape(self, medium_lab, events):
        assert len(events) == 8
        for event in events:
            assert event.old_asn != event.new_asn
            assert medium_lab.plan.origin_of(event.prefix) == event.old_asn

    def test_stale_history_raises_false_positives(self, medium_lab, events):
        impacts = stale_history_study(medium_lab, events)
        assert all(impact.false_positive for impact in impacts)
        # Detection-only (no blocking strategy): nothing is blackholed.
        assert all(impact.blackholed_asns == 0 for impact in impacts)

    def test_blocking_on_stale_history_blackholes(self, medium_lab, events):
        from repro.defense.strategies import top_degree_deployment

        strategy = top_degree_deployment(medium_lab.graph, 40)
        impacts = stale_history_study(
            medium_lab, events, blocking_strategy=strategy
        )
        assert any(impact.blackholed_asns > 0 for impact in impacts)
        for impact in impacts:
            assert 0.0 <= impact.blackholed_fraction <= 1.0

    def test_updated_registry_is_churn_proof(self, medium_lab, events):
        # The new owners re-publish after the transfer (Section VII
        # discipline): build an authority that includes their new ROAs.
        publication = PublicationState.full(medium_lab.plan)
        table = publication.table()
        from repro.registry.roa import RouteOriginAuthorization

        for event in events:
            table.add(RouteOriginAuthorization(event.prefix, event.new_asn))
        impacts = stale_history_study(
            medium_lab,
            events,
            blocking_strategy=custom_deployment("all", medium_lab.graph.asns()),
            authority=table,
        )
        assert all(not impact.false_positive for impact in impacts)
        assert all(impact.blackholed_asns == 0 for impact in impacts)

    def test_explicit_event(self, medium_lab):
        owner = medium_lab.plan.all_asns()[0]
        new = next(
            asn
            for asn in medium_lab.plan.all_asns()
            if medium_lab.view.node_of(asn) != medium_lab.view.node_of(owner)
        )
        event = TransferEvent(
            prefix=medium_lab.plan.primary_prefix(owner),
            old_asn=owner,
            new_asn=new,
        )
        impacts = stale_history_study(medium_lab, [event])
        assert impacts[0].verdict is ValidationState.INVALID
