#!/usr/bin/env python3
"""Regional hardening: the Section VII self-interest playbook, end to end.

A regional advisory board (the paper's New-Zealand scenario) wants to
protect its most vulnerable member without waiting for global BGP-security
deployment. The planner executes the paper's five steps — analyze, reduce
vulnerability, publish, filter, detect — and measures each action's effect
by simulation.

Run::

    python examples/regional_hardening.py [--region R03]
"""

import argparse

from repro.attacks import HijackLab
from repro.core import SelfInterestPlanner
from repro.topology import GeneratorConfig, generate_topology


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--as-count", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--region", default=None,
                        help="region name (default: the smallest region, "
                             "like the paper's 187-AS New Zealand slice)")
    parser.add_argument("--target", type=int, default=None)
    args = parser.parse_args()

    graph = generate_topology(GeneratorConfig.scaled(args.as_count, seed=args.seed))
    regions = graph.regions()
    region = args.region or min(regions, key=lambda name: len(regions[name]))
    print(f"hardening region {region} ({len(regions[region])} ASes)\n")

    lab = HijackLab(graph, seed=args.seed)
    planner = SelfInterestPlanner(lab)
    plan = planner.plan(region, target_asn=args.target,
                        external_sample=150, probe_budget=4)
    print(plan.report())

    if plan.rehoming and plan.rehomed_impact:
        before = plan.baseline.regional_fraction
        after = plan.rehomed_impact.regional_fraction
        print(f"\npaper reference: re-homing cut regional pollution "
              f"60% -> 25%; this run: {before:.0%} -> {after:.0%}")

    # Render the paper's "before & after" comparison for the hub filter:
    # which ASes the single filter saved, and where attacks still get in.
    from repro.defense import Defense
    from repro.viz import PolarLayout, diff_outcomes, render_diff_frame

    hub = plan.filter_rule.filtering_asn
    attacker = max(
        (
            asn
            for asn in regions[region]
            if asn not in (plan.target_asn, hub)
            and hub not in graph.customers(asn)  # the hub must sit on the
            # attack's path for a hub filter to have anything to block
        ),
        key=graph.degree,
    )
    before_outcome = lab.origin_hijack(plan.target_asn, attacker)
    filtered_lab = lab.with_defense(Defense(manual_filters=(plan.filter_rule,)))
    after_outcome = filtered_lab.origin_hijack(plan.target_asn, attacker)
    diff = diff_outcomes(before_outcome, after_outcome)
    layout = PolarLayout.compute(graph, plan=lab.plan)
    render_diff_frame(
        layout, diff,
        title=f"Hub filter at AS{plan.filter_rule.filtering_asn}: "
              f"{diff.protected_count} ASes protected "
              f"({diff.effectiveness():.0%} of the polluted set)",
        path="hub_filter_diff.svg",
    )
    print(f"\nbefore/after frame written to hub_filter_diff.svg "
          f"({diff.protected_count} ASes protected, "
          f"{len(diff.still_polluted)} still polluted)")


if __name__ == "__main__":
    main()
