#!/usr/bin/env python3
"""Detector audit: do your probes actually see attacks that matter?

Reproduces the Section VI comparison and then goes one step further with
the Section VII advice: run a greedy probe-placement pass and show how few
well-chosen probes close the blind spots of an ad-hoc probe set.

Run::

    python examples/detector_audit.py [--attacks 1500]
"""

import argparse

from repro.attacks import HijackLab
from repro.core import compare_detectors, paper_probe_sets
from repro.detection import (
    DetectionStudy,
    HijackDetector,
    greedy_probe_placement,
)
from repro.topology import GeneratorConfig, generate_topology, transit_asns
from repro.util import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--as-count", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--attacks", type=int, default=1500)
    args = parser.parse_args()

    graph = generate_topology(GeneratorConfig.scaled(args.as_count, seed=args.seed))
    lab = HijackLab(graph, seed=args.seed)

    print(f"running {args.attacks} random transit-pair hijacks...")
    comparison = compare_detectors(
        lab, paper_probe_sets(lab, seed=args.seed),
        attack_count=args.attacks, seed=args.seed,
    )

    rows = []
    for study in comparison.studies:
        summary = study.undetected_summary()
        rows.append((
            study.detector.probes.name,
            len(study.detector.probes),
            f"{summary['miss_rate']:.1%}",
            round(summary["mean_pollution"], 0),
            int(summary["max_pollution"]),
        ))
    print()
    print(render_table(
        ("probe set", "probes", "miss rate", "mean missed size", "max missed size"),
        rows,
        title="Detector configurations (paper: tier-1 misses 34%, "
              "BGPmon-like 11%, top-degree-62 3%)",
    ))

    for study in comparison.studies:
        top = study.top_undetected(3)
        if top:
            print(f"\nlargest attacks escaping {study.detector.probes.name}:")
            for row in top:
                print(f"  AS{row.attacker_asn} -> AS{row.target_asn}: "
                      f"{row.pollution_count} ASes polluted, zero probes triggered")

    # Section VII: extend the worst probe set greedily.
    worst = comparison.worst()
    workload = [report.outcome for report in worst.reports]
    extended = greedy_probe_placement(
        workload, sorted(transit_asns(graph)),
        count=5, seed_probes=worst.detector.probes.asns,
    )
    improved = DetectionStudy.run(HijackDetector(extended), workload)
    print(f"\ngreedy placement: adding "
          f"{len(extended) - len(worst.detector.probes)} probes to "
          f"{worst.detector.probes.name} cuts its miss rate "
          f"{worst.miss_rate():.1%} -> {improved.miss_rate():.1%}")


if __name__ == "__main__":
    main()
