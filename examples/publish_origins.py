#!/usr/bin/env python3
"""Publishing route origins: RPKI vs ROVER, and why participation matters.

Walks the registry layer: allocate address space, publish origins through
both the simulated RPKI (certificate chains + signed ROAs) and ROVER
(DNSSEC-protected reverse DNS), show the reverse-DNS names ROVER uses,
and demonstrate the paper's core Section VII point — an *unpublished*
target cannot be protected no matter how many ASes validate.

Run::

    python examples/publish_origins.py
"""

import argparse

from repro.attacks import HijackLab
from repro.core import resolve_roles
from repro.defense import Defense, top_degree_deployment
from repro.registry import (
    PublicationState,
    ValidationState,
    format_name,
    reverse_name,
)
from repro.topology import GeneratorConfig, generate_topology


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--as-count", type=int, default=1500)
    parser.add_argument("--seed", type=int, default=2014)
    args = parser.parse_args()

    graph = generate_topology(GeneratorConfig.scaled(args.as_count, seed=args.seed))
    lab = HijackLab(graph, seed=args.seed)
    roles = resolve_roles(graph)
    target = roles.deep_target
    attacker = roles.aggressive_attacker
    prefix = lab.target_prefix(target)

    print(f"target AS{target} originates {prefix}")
    print(f"ROVER publishes it at: {format_name(reverse_name(prefix))}")

    # Publish through both backends and cross-check the verdicts.
    publication = PublicationState.with_participants(lab.plan, [target], seed=args.seed)
    rpki = publication.to_rpki()
    rover = publication.to_rover()
    for name, authority in (("RPKI", rpki), ("ROVER", rover)):
        legit = authority.validate(prefix, target)
        bogus = authority.validate(prefix, attacker)
        print(f"{name:>6}: legitimate announcement -> {legit.value}, "
              f"hijack by AS{attacker} -> {bogus.value}")

    deployment = top_degree_deployment(graph, 62)

    # Case 1: the target published — validators block the hijack.
    defended = lab.with_defense(
        Defense(strategy=deployment, authority=publication.table())
    )
    protected = defended.origin_hijack(target, attacker)

    # Case 2: nobody published — the same validators see NOT_FOUND and
    # must let the announcement through.
    empty = PublicationState.with_participants(lab.plan, [])
    unprotected = lab.with_defense(
        Defense(strategy=deployment, authority=empty.table())
    ).origin_hijack(target, attacker)

    baseline = lab.origin_hijack(target, attacker)
    print(f"\nhijack pollution with {len(deployment)} validating ASes:")
    print(f"  target published:   {protected.pollution_count} ASes")
    print(f"  target unpublished: {unprotected.pollution_count} ASes "
          f"(baseline without any defense: {baseline.pollution_count})")
    assert unprotected.pollution_count == baseline.pollution_count
    print("\nunpublished == baseline: publishing is the critical step "
          "(paper, Section VII)")

    # The sub-prefix case needs maxLength-aware ROAs: the exact-length
    # publication makes any more-specific INVALID.
    sub = next(prefix.subnets())
    verdict = publication.validate(sub, attacker)
    assert verdict is ValidationState.INVALID
    print(f"sub-prefix {sub} announced by AS{attacker}: {verdict.value} "
          "(blockable everywhere it meets a validator)")


if __name__ == "__main__":
    main()
