#!/usr/bin/env python3
"""Render the Fig. 1 polar propagation movie for one attack.

Each generation of the hijack becomes an SVG frame: red lines are accepted
(polluting) announcements, green lines rejections; ASes sit at a radius
given by their depth (tier-1 on the rim) and their circle size reflects
owned address space.

Run::

    python examples/polar_attack_movie.py [--outdir polar_frames]
"""

import argparse
from pathlib import Path

from repro.attacks import HijackLab
from repro.core import resolve_roles
from repro.topology import GeneratorConfig, generate_topology
from repro.viz import PolarLayout, PolarRenderer, render_attack_frames


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--as-count", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--target", type=int, default=None)
    parser.add_argument("--attacker", type=int, default=None)
    parser.add_argument("--outdir", type=Path, default=Path("polar_frames"))
    args = parser.parse_args()

    graph = generate_topology(GeneratorConfig.scaled(args.as_count, seed=args.seed))
    lab = HijackLab(graph, seed=args.seed)
    roles = resolve_roles(graph)
    target = args.target if args.target is not None else roles.deep_target
    attacker = args.attacker if args.attacker is not None else roles.aggressive_attacker

    print(f"animating: AS{attacker} hijacks AS{target}'s "
          f"{lab.target_prefix(target)}")
    _legit, attack = lab.animate(target, attacker)
    outcome = lab.origin_hijack(target, attacker)
    print(f"converged in {attack.generations} generations; "
          f"{outcome.pollution_count} ASes polluted "
          f"({outcome.address_fraction:.0%} of the address space)")

    layout = PolarLayout.compute(graph, plan=lab.plan, view=lab.view)
    renderer = PolarRenderer(layout=layout, view=lab.view)
    frames = render_attack_frames(
        renderer, attack, args.outdir, attacker_asn=attacker, target_asn=target
    )
    print(f"wrote {len(frames)} frames:")
    for frame in frames:
        print(f"  {frame}")


if __name__ == "__main__":
    main()
