#!/usr/bin/env python3
"""Quickstart: generate an internet-like topology and simulate one hijack.

Run::

    python examples/quickstart.py [--as-count 2000] [--seed 2014]

This walks the core API end to end: build a calibrated synthetic AS
topology, inspect its structure, pick interesting players, and simulate
both an origin hijack and a sub-prefix hijack with and without a deployed
defense.
"""

import argparse

from repro.attacks import HijackLab
from repro.core import resolve_roles
from repro.defense import Defense, top_degree_deployment
from repro.registry import PublicationState
from repro.topology import GeneratorConfig, generate_topology, summarize


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--as-count", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=2014)
    args = parser.parse_args()

    # 1. A calibrated synthetic topology (drop in a real CAIDA file via
    #    repro.topology.load_caida for full-scale runs).
    graph = generate_topology(GeneratorConfig.scaled(args.as_count, seed=args.seed))
    stats = summarize(graph)
    print(f"topology: {stats.as_count} ASes, {stats.link_count} links, "
          f"{len(stats.tier1)} tier-1s, {stats.transit_count} transit "
          f"({stats.transit_fraction:.1%}), max depth {stats.max_depth}")

    # 2. The lab bundles the topology, address plan and routing engines.
    lab = HijackLab(graph, seed=args.seed)
    roles = resolve_roles(graph)
    target = roles.deep_target
    attacker = roles.aggressive_attacker
    print(f"\ntarget: AS{target} (deep, vulnerable); "
          f"attacker: AS{attacker} (aggressive, low depth)")

    # 3. An origin hijack: the attacker announces the target's own prefix.
    outcome = lab.origin_hijack(target, attacker)
    print(f"\norigin hijack of {outcome.scenario.prefix}:")
    print(f"  polluted ASes: {outcome.pollution_count} "
          f"({outcome.pollution_count / len(graph):.0%} of the topology)")
    print(f"  address space drawn to the attacker: {outcome.address_fraction:.0%}")

    # 3b. The data plane is worse than the RIB count suggests: ASes with
    #     clean tables forward through polluted upstreams.
    from repro.attacks import dataplane_capture

    result = lab.engine.hijack(
        lab.view.node_of(target), lab.view.node_of(attacker)
    )
    capture = dataplane_capture(result)
    print(f"  data-plane capture: {capture.captured_count} ASes "
          f"({len(capture.hidden_capture)} with clean RIBs — hidden damage)")

    # 4. A sub-prefix hijack wins everywhere unless origin validation
    #    blocks it (longest-prefix match has no legitimate competitor).
    subprefix = lab.subprefix_hijack(target, attacker)
    print(f"\nsub-prefix hijack of {subprefix.scenario.prefix}:")
    print(f"  polluted ASes: {subprefix.pollution_count}")

    # 5. Deploy origin validation at the 62 highest-degree ASes, with
    #    everyone's route origins published (RPKI/ROVER-style).
    publication = PublicationState.full(lab.plan)
    defense = Defense(
        strategy=top_degree_deployment(graph, 62),
        authority=publication.table(),
    )
    defended = lab.with_defense(defense)
    blocked_outcome = defended.origin_hijack(target, attacker)
    print(f"\nsame origin hijack with ROV at the top-62 core:")
    print(f"  polluted ASes: {blocked_outcome.pollution_count} "
          f"(was {outcome.pollution_count})")
    print(f"  blocked at {len(blocked_outcome.blocked_asns)} validating ASes")


if __name__ == "__main__":
    main()
