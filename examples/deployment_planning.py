#!/usr/bin/env python3
"""Deployment planning: how much critical mass does blocking need?

Reproduces the Section V study for a target of your choice: evaluates the
paper's deployment ladder (random / tier-1 / top-degree cores), reports
the improvement factors, locates the non-linear crossover, and lists the
attacks that still get through the largest deployment.

Run::

    python examples/deployment_planning.py [--target ASN] [--sample 300]
"""

import argparse

from repro.attacks import HijackLab
from repro.core import compare_strategies, resolve_roles, top_potent_attacks
from repro.defense import paper_ladder
from repro.registry import PublicationState
from repro.topology import GeneratorConfig, generate_topology
from repro.util import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--as-count", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--sample", type=int, default=300)
    parser.add_argument("--target", type=int, default=None,
                        help="defaults to the topology's deepest stub")
    args = parser.parse_args()

    graph = generate_topology(GeneratorConfig.scaled(args.as_count, seed=args.seed))
    lab = HijackLab(graph, seed=args.seed)
    target = args.target if args.target is not None else resolve_roles(graph).deep_target

    # The registries need the target's origins published for blocking to
    # work at all — Section VII's "critical step".
    publication = PublicationState.full(lab.plan)
    ladder = paper_ladder(graph, seed=args.seed)

    comparison = compare_strategies(
        lab, target, ladder, publication.table(),
        transit_only=True, sample=args.sample, seed=args.seed,
    )

    rows = []
    factors = comparison.improvement_factors()
    for evaluation in comparison.evaluations:
        stats = evaluation.profile.summary
        rows.append((
            evaluation.strategy.name,
            len(evaluation.strategy),
            round(stats.mean_successful, 1),
            stats.maximum,
            f"{factors[evaluation.strategy.name]:.1f}x",
        ))
    print(render_table(
        ("strategy", "deployers", "mean successful pollution", "max", "improvement"),
        rows,
        title=f"Incremental deployment against AS{target} "
              f"({args.sample} transit attackers)",
    ))

    crossover = comparison.crossover()
    if crossover is None:
        print("\nno crossover found — deployment never reached critical mass")
    else:
        print(f"\nnon-linear crossover at: {crossover.strategy.name} "
              f"({len(crossover.strategy)} deployers)")

    residual = top_potent_attacks(
        lab, target, ladder[-1], publication.table(),
        transit_only=True, sample=args.sample, seed=args.seed,
    )
    print()
    print(render_table(
        ("attacker ASN", "pollution", "degree", "depth"),
        [(a.attacker_asn, a.pollution_count, a.degree, a.depth) for a in residual],
        title=f"Top still-potent attacks under {ladder[-1].name}",
    ))

    # Why do these survive? Extract concrete witness paths ("holes").
    from repro.core import analyze_holes
    from repro.defense import Defense

    defended = lab.with_defense(
        Defense(strategy=ladder[-1], authority=publication.table())
    )
    report = analyze_holes(
        defended, target, transit_only=True, sample=args.sample, seed=args.seed
    )
    print(f"\nresidual holes: {len(report.holes)} of {report.attacks_run} "
          f"attacks ({report.residual_rate:.1%}); by kind: "
          f"{ {kind.value: count for kind, count in report.by_kind().items()} }")
    for hole in report.worst(3):
        print(f"  {hole.describe()}")
    reinforcements = report.recommended_reinforcements(5)
    if reinforcements:
        print("recommended next deployers: "
              + ", ".join(f"AS{asn}" for asn in reinforcements))


if __name__ == "__main__":
    main()
