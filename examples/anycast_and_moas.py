#!/usr/bin/env python3
"""Anycast, MOAS conflicts, and telling them apart from hijacks.

Control-plane detectors work by flagging origin conflicts — but multiple
origins for one prefix are often *legitimate* (anycast DNS, multi-org
prefixes). This walkthrough computes a real anycast catchment split with
the routing engine, then shows how published route-origin data separates
benign MOAS from hijacks, and what happens without it.

Run::

    python examples/anycast_and_moas.py
"""

import argparse

from repro.attacks import HijackLab
from repro.core import resolve_roles
from repro.detection import MoasVerdict, anycast_state, classify_moas
from repro.registry import PublicationState, RouteOriginAuthorization
from repro.topology import GeneratorConfig, generate_topology


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--as-count", type=int, default=1500)
    parser.add_argument("--seed", type=int, default=2014)
    args = parser.parse_args()

    graph = generate_topology(GeneratorConfig.scaled(args.as_count, seed=args.seed))
    lab = HijackLab(graph, seed=args.seed)
    roles = resolve_roles(graph)

    # An anycast service announces one prefix from two sites: the deep
    # target's AS plus a site under the tier-2 hierarchy.
    site_a = roles.deep_target
    site_b = roles.tier2_depth1_stub
    prefix = lab.target_prefix(site_a)
    print(f"anycast prefix {prefix} announced from AS{site_a} and AS{site_b}")

    state = anycast_state(
        lab.engine, [lab.view.node_of(site_a), lab.view.node_of(site_b)]
    )
    catchment_a = lab.view.expand(state.holders_of(lab.view.node_of(site_a)))
    catchment_b = lab.view.expand(state.holders_of(lab.view.node_of(site_b)))
    print(f"catchments: {len(catchment_a)} ASes route to site A, "
          f"{len(catchment_b)} to site B")

    # A monitor sees the MOAS conflict. With both origins published, the
    # alarm is suppressed; with none, operators get paged for nothing.
    publication = PublicationState.full(lab.plan)
    table = publication.table()
    table.add(RouteOriginAuthorization(prefix, site_b))

    benign = classify_moas(table, prefix, [site_a, site_b])
    print(f"\npublished MOAS verdict: {benign.verdict.value} "
          f"(alarm: {benign.alarm})")
    assert benign.verdict is MoasVerdict.LEGITIMATE_ANYCAST

    hijack = classify_moas(table, prefix, [site_a, roles.aggressive_attacker])
    print(f"hijacker joins the MOAS: {hijack.verdict.value} "
          f"(invalid origins: {hijack.invalid_origins})")

    unpublished = classify_moas(None, prefix, [site_a, site_b])
    print(f"without published data: {unpublished.verdict.value} "
          f"(alarm: {unpublished.alarm}) — the false-positive noise the "
          "paper's 'publish route origins' step eliminates")


if __name__ == "__main__":
    main()
